"""A compact but real TCP: handshake, SYN cookies, reliable byte stream.

The TCP-based guard scheme (paper §III.C) rests on two properties of real
TCP that this implementation reproduces faithfully:

* the three-way handshake echoes the server's initial sequence number, so a
  spoofing client never completes a connection — the ISN *is* the cookie;
* with SYN cookies enabled the listener keeps **no state** for half-open
  connections: the ISN is a keyed hash of the 4-tuple, validated when the
  final ACK arrives.

The data path is deliberately simple — fixed MSS, cumulative ACKs, one
retransmission timer per connection, in-order-only receive — but it is a
real reliable stream: segments lost to CPU overload or link loss are
retransmitted, which is how the TCP proxy's throughput degrades (rather
than collapses) under the UDP floods of Figure 7(b).
"""

from __future__ import annotations

import enum
import hashlib
import struct
from ipaddress import IPv4Address
from typing import TYPE_CHECKING, Callable

from .errors import ConnectionError_, SocketError
from .packet import Packet, TcpFlags, TcpSegment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

#: Maximum segment size for data segments (Ethernet-ish).
MSS = 1460

#: Retransmission timeout (seconds), its exponential-backoff ceiling, and
#: the default retransmission budget.  Once ``max_retransmits`` consecutive
#: timeouts fire with no forward progress the connection aborts — a dead or
#: blackholed peer costs bounded time and zero permanent state, which is
#: what lets the resolver's TCP fallback fail fast instead of hanging.
DEFAULT_RTO = 0.25
MAX_RTO = 4.0
MAX_RETRANSMITS = 6

#: How many unacknowledged segments a sender may have in flight.
SEND_WINDOW_SEGMENTS = 32

#: How long a cleanly-closed connection's 4-tuple is remembered (TIME_WAIT
#: stand-in).  Old duplicates — reordered ACKs, duplicated FINs — arriving
#: after teardown are swallowed instead of falling through to a listener,
#: where a SYN-cookie validator would miscount them as forged ACKs.
TIME_WAIT_LINGER = 1.0

ConnKey = tuple[IPv4Address, int, IPv4Address, int]

#: Trust boundary for the flow analyser (``repro.analysis.flow``).  The
#: handshake argument is checked two ways: T-rules treat inbound segments
#: as tainted until they pass an ISN comparison (``iss`` reads and the
#: SYN-cookie recomputation are the registered evidence), and the S-rules
#: check the extracted state machine against ``fsm_spec.TCP_SPEC`` —
#: every path into ESTABLISHED must cross a verified ISN-checked edge.
__trust_boundary__ = {
    "scheme": "tcp-handshake",
    "entry_points": ["TcpConnection.handle", "TcpStack._process"],
    "taint_params": ["segment", "packet"],
    "sanitizers": ["_syn_cookie"],
    "sanitizer_attrs": ["iss"],
    "sinks": ["on_connection"],
    "assumes": (
        "segment fields are attacker-writable (spoofed sources); the ISN "
        "echo is the only admissible proof of address (§III.C)"
    ),
}

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``).  A spoofed SYN flood addresses both
#: tables directly (the 4-tuple key is attacker-chosen), so the
#: connection table admits through a capped ``_admit`` — full table ==
#: SYN-queue overflow, the exact state SYN cookies exist to avoid — and
#: TIME_WAIT displaces its oldest entry once the purge can free nothing.
__state_bounds__ = {
    "TcpStack": {
        "connections": {
            "bound": 65536,
            "evicted_by": "lifecycle+cap",
            "keyed_by": "attacker",
        },
        "_time_wait": {"bound": 8192, "evicted_by": "cap", "keyed_by": "attacker"},
        "_listeners": {"bound": 64, "evicted_by": "lifecycle", "keyed_by": "config"},
    },
}

#: Hard cap on concurrent connections per stack.  Reaching it refuses
#: new admissions (active opens raise, passive SYNs are silently
#: ignored) rather than growing without bound — the non-cookie listener
#: otherwise hands a SYN flood one TcpConnection per spoofed source.
MAX_CONNECTIONS = 65536

#: Hard cap on remembered TIME_WAIT 4-tuples.
TIME_WAIT_CAP = 8192


class TcpState(enum.Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_WAIT_1 = "fin-wait-1"
    FIN_WAIT_2 = "fin-wait-2"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"
    TIME_WAIT = "time-wait"


class Listener:
    """A passive TCP endpoint, optionally protected by SYN cookies."""

    def __init__(
        self,
        stack: "TcpStack",
        ip: IPv4Address | None,
        port: int,
        on_connection: Callable[["TcpConnection"], None],
        *,
        syn_cookies: bool = False,
    ):
        self.stack = stack
        self.ip = ip
        self.port = port
        self.on_connection = on_connection
        self.syn_cookies = syn_cookies
        self.syns_received = 0
        self.cookies_rejected = 0

    def close(self) -> None:
        self.stack._listeners.pop((self.ip, self.port), None)


class TcpConnection:
    """One reliable byte-stream connection."""

    # SYN floods create one of these per spoofed segment; __slots__ keeps
    # the per-connection footprint flat (P001)
    __slots__ = (
        "stack",
        "local_ip",
        "local_port",
        "remote_ip",
        "remote_port",
        "state",
        "iss",
        "snd_una",
        "snd_nxt",
        "rcv_nxt",
        "opened_at",
        "established_at",
        "rtt",
        "rto",
        "max_retransmits",
        "aborted_by_retries",
        "_send_buffer",
        "_inflight",
        "_retransmit_handle",
        "_retransmits",
        "_fin_queued",
        "_fin_sent",
        "bytes_sent",
        "bytes_received",
        "segments_sent",
        "on_established",
        "on_data",
        "on_close",
    )

    def __init__(
        self,
        stack: "TcpStack",
        local_ip: IPv4Address,
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
    ):
        self.stack = stack
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.state = TcpState.CLOSED
        self.iss = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self.rcv_nxt = 0
        self.opened_at = stack.node.sim.now
        self.established_at: float | None = None
        self.rtt: float | None = None
        self.rto = DEFAULT_RTO
        #: retransmission budget; inherited from the stack so applications
        #: (e.g. the resolver's TCP fallback) can tighten it per connection
        self.max_retransmits = stack.max_retransmits
        #: True when the connection died from retransmission exhaustion
        self.aborted_by_retries = False
        self._send_buffer = bytearray()
        self._inflight: list[tuple[int, bytes, TcpFlags]] = []
        self._retransmit_handle = None
        self._retransmits = 0
        self._fin_queued = False
        self._fin_sent = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.segments_sent = 0
        # application callbacks
        self.on_established: Callable[["TcpConnection"], None] | None = None
        self.on_data: Callable[["TcpConnection", bytes], None] | None = None
        self.on_close: Callable[["TcpConnection", bool], None] | None = None

    # -- public API -----------------------------------------------------------

    @property
    def key(self) -> ConnKey:
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    def send(self, data: bytes) -> None:
        """Queue application data for reliable delivery."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise ConnectionError_(f"send in state {self.state}")
        if self._fin_queued:
            raise ConnectionError_("send after close")
        self._send_buffer += data
        self._pump()

    def close(self) -> None:
        """Graceful close: FIN goes out after queued data drains."""
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT):
            return
        if self._fin_queued:
            return
        self._fin_queued = True
        self._pump()

    def abort(self) -> None:
        """Hard close: send RST and drop all state."""
        if self.state is not TcpState.CLOSED:
            self._emit(TcpFlags.RST, seq=self.snd_nxt)
        self._teardown(error=True)

    @property
    def duration(self) -> float:
        """Seconds since the connection was opened (guard reaping policy)."""
        return self.stack.node.sim.now - self.opened_at

    # -- connection setup -------------------------------------------------------

    def _start_active(self) -> None:
        self.iss = self.stack._next_isn()
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.state = TcpState.SYN_SENT
        self._emit(TcpFlags.SYN, seq=self.iss)
        self._arm_retransmit()

    def _start_passive(self, syn: TcpSegment) -> None:
        self.rcv_nxt = (syn.seq + 1) & 0xFFFFFFFF
        self.iss = self.stack._next_isn()
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.state = TcpState.SYN_RCVD
        self._emit(TcpFlags.SYN | TcpFlags.ACK, seq=self.iss, ack=self.rcv_nxt)
        self._arm_retransmit()

    def _start_from_cookie(self, ack_segment: TcpSegment, cookie_isn: int) -> None:
        """Establish directly from a validated SYN-cookie ACK (no prior state)."""
        self.iss = cookie_isn
        self.snd_una = (cookie_isn + 1) & 0xFFFFFFFF
        self.snd_nxt = self.snd_una
        self.rcv_nxt = ack_segment.seq
        self._established()

    def _established(self) -> None:
        self.state = TcpState.ESTABLISHED
        self.established_at = self.stack.node.sim.now
        self.rtt = self.established_at - self.opened_at
        self._cancel_retransmit()
        if self.on_established:
            self.on_established(self)

    # -- segment processing -------------------------------------------------------

    def handle(self, segment: TcpSegment) -> None:
        if segment.has(TcpFlags.RST):
            self._teardown(error=True)
            return

        if self.state is TcpState.SYN_SENT:
            if segment.has(TcpFlags.SYN) and segment.has(TcpFlags.ACK):
                if segment.ack != (self.iss + 1) & 0xFFFFFFFF:
                    self.abort()
                    return
                self.rcv_nxt = (segment.seq + 1) & 0xFFFFFFFF
                self.snd_una = segment.ack
                self.snd_nxt = segment.ack
                self._emit(TcpFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
                self._established()
                self._pump()
            return

        if self.state is TcpState.SYN_RCVD:
            if segment.has(TcpFlags.ACK) and segment.ack == (self.iss + 1) & 0xFFFFFFFF:
                self.snd_una = segment.ack
                self.snd_nxt = segment.ack
                self._established()
                listener = self.stack._listener_for(self.local_ip, self.local_port)
                if listener:
                    listener.on_connection(self)
                # fall through: the ACK may carry data
            else:
                return

        # -- acknowledgements
        if segment.has(TcpFlags.ACK):
            self._process_ack(segment.ack)

        # -- incoming data
        if segment.data:
            if segment.seq == self.rcv_nxt:
                self.rcv_nxt = (self.rcv_nxt + len(segment.data)) & 0xFFFFFFFF
                self.bytes_received += len(segment.data)
                self._emit(TcpFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
                if self.on_data:
                    self.on_data(self, segment.data)
            else:
                # duplicate or out-of-order: re-assert our expectation
                self._emit(TcpFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt)

        # -- FIN processing
        if segment.has(TcpFlags.FIN) and segment.seq == self.rcv_nxt:
            self.rcv_nxt = (self.rcv_nxt + 1) & 0xFFFFFFFF
            self._emit(TcpFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
            if self.state is TcpState.ESTABLISHED:
                self.state = TcpState.CLOSE_WAIT
                if self.on_data:
                    self.on_data(self, b"")  # EOF signal
            elif self.state in (TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2):
                self._teardown(error=False)

    def _process_ack(self, ack: int) -> None:
        if not _seq_gt(ack, self.snd_una):
            return
        self.snd_una = ack
        # keep only segments not yet fully acknowledged (end > ack)
        self._inflight = [
            (seq, data, flags)
            for seq, data, flags in self._inflight
            if _seq_gt((seq + _seq_span(data, flags)) & 0xFFFFFFFF, ack)
        ]
        self._retransmits = 0
        if self._inflight:
            self._arm_retransmit()
        else:
            self._cancel_retransmit()
            if self.state is TcpState.FIN_WAIT_1 and self._fin_sent:
                self.state = TcpState.FIN_WAIT_2
            elif self.state is TcpState.LAST_ACK and self._fin_sent:
                self._teardown(error=False)
        self._pump()

    # -- transmit machinery -------------------------------------------------------

    def _pump(self) -> None:
        """Move data from the send buffer onto the wire, then FIN if queued."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT,
                              TcpState.FIN_WAIT_1):
            return
        while self._send_buffer and len(self._inflight) < SEND_WINDOW_SEGMENTS:
            chunk = bytes(self._send_buffer[:MSS])
            del self._send_buffer[:MSS]
            seq = self.snd_nxt
            self.snd_nxt = (self.snd_nxt + len(chunk)) & 0xFFFFFFFF
            self.bytes_sent += len(chunk)
            self._inflight.append((seq, chunk, TcpFlags.ACK))
            self._emit(TcpFlags.ACK, seq=seq, ack=self.rcv_nxt, data=chunk)
        if self._fin_queued and not self._fin_sent and not self._send_buffer:
            seq = self.snd_nxt
            self.snd_nxt = (self.snd_nxt + 1) & 0xFFFFFFFF
            self._fin_sent = True
            if self.state is TcpState.ESTABLISHED:
                self.state = TcpState.FIN_WAIT_1
            elif self.state is TcpState.CLOSE_WAIT:
                self.state = TcpState.LAST_ACK
            self._inflight.append((seq, b"", TcpFlags.FIN | TcpFlags.ACK))
            self._emit(TcpFlags.FIN | TcpFlags.ACK, seq=seq, ack=self.rcv_nxt)
        if self._inflight:
            self._arm_retransmit()

    def _emit(self, flags: TcpFlags, *, seq: int, ack: int = 0, data: bytes = b"") -> None:
        segment = TcpSegment(
            sport=self.local_port,
            dport=self.remote_port,
            seq=seq,
            ack=ack,
            flags=flags,
            data=data,
        )
        self.segments_sent += 1
        self.stack._transmit(self.local_ip, self.remote_ip, segment)

    # -- timers ---------------------------------------------------------------

    def _arm_retransmit(self) -> None:
        self._cancel_retransmit()
        self._retransmit_handle = self.stack.node.sim.schedule(self.rto, self._on_retransmit)

    def _cancel_retransmit(self) -> None:
        if self._retransmit_handle is not None:
            self._retransmit_handle.cancel()
            self._retransmit_handle = None

    def _on_retransmit(self) -> None:
        self._retransmit_handle = None
        self._retransmits += 1
        if self._retransmits > self.max_retransmits:
            self.aborted_by_retries = True
            self.stack.retry_exhaustions += 1
            self.abort()
            return
        self.rto = min(self.rto * 2, MAX_RTO)
        if self.state is TcpState.SYN_SENT:
            self._emit(TcpFlags.SYN, seq=self.iss)
        elif self.state is TcpState.SYN_RCVD:
            self._emit(TcpFlags.SYN | TcpFlags.ACK, seq=self.iss, ack=self.rcv_nxt)
        elif self._inflight:
            seq, data, flags = self._inflight[0]
            self._emit(flags, seq=seq, ack=self.rcv_nxt, data=data)
        self._arm_retransmit()

    # -- teardown ---------------------------------------------------------------

    def _teardown(self, *, error: bool) -> None:
        already_closed = self.state is TcpState.CLOSED
        self.state = TcpState.CLOSED
        self._cancel_retransmit()
        self._send_buffer.clear()
        self._inflight.clear()
        self.stack._forget(self, linger=not error and self.established_at is not None)
        if not already_closed and self.on_close:
            self.on_close(self, error)

    def __repr__(self) -> str:
        return (
            f"TcpConnection({self.local_ip}:{self.local_port} <-> "
            f"{self.remote_ip}:{self.remote_port} {self.state.value})"
        )


def _seq_gt(a: int, b: int) -> bool:
    """True if sequence number ``a`` is after ``b`` (mod 2^32 arithmetic)."""
    return ((a - b) & 0xFFFFFFFF) < 0x80000000 and a != b


def _seq_span(data: bytes, flags: TcpFlags) -> int:
    """Sequence-space footprint of a segment: its data, or 1 for SYN/FIN."""
    if data:
        return len(data)
    return 1 if flags & (TcpFlags.SYN | TcpFlags.FIN) else 0


class TcpStack:
    """Per-node TCP: listeners, connection table, SYN-cookie validation."""

    def __init__(self, node: "Node"):
        self.node = node
        self._listeners: dict[tuple[IPv4Address | None, int], Listener] = {}
        self.connections: dict[ConnKey, TcpConnection] = {}
        self._isn_counter = 1000
        self._cookie_secret = node.sim.rng.getrandbits(64).to_bytes(8, "big")
        self._next_ephemeral = 32768
        #: Default retransmission budget for connections on this stack.
        self.max_retransmits = MAX_RETRANSMITS
        #: Optional hook: CPU-seconds charged per segment processed or sent.
        #: Receives this stack, so the cost can scale with table size.
        self.segment_cost_fn: Callable[["TcpStack"], float] | None = None
        self.segments_received = 0
        self.segments_dropped_cpu = 0
        self.segments_unroutable = 0
        self.cookie_failures = 0
        self.retry_exhaustions = 0
        self.stale_segments = 0
        self.connections_refused = 0
        self._time_wait: dict[ConnKey, float] = {}

    # -- public API ---------------------------------------------------------------

    def listen(
        self,
        port: int,
        on_connection: Callable[[TcpConnection], None],
        *,
        ip: IPv4Address | None = None,
        syn_cookies: bool = False,
    ) -> Listener:
        key = (ip, port)
        if key in self._listeners:
            raise SocketError(f"{self.node.name}: TCP port {port} already listening")
        listener = Listener(self, ip, port, on_connection, syn_cookies=syn_cookies)
        self._listeners[key] = listener
        return listener

    def connect(
        self,
        dst: IPv4Address,
        dport: int,
        *,
        src: IPv4Address | None = None,
        on_established: Callable[[TcpConnection], None] | None = None,
        on_data: Callable[[TcpConnection, bytes], None] | None = None,
        on_close: Callable[[TcpConnection, bool], None] | None = None,
        max_retransmits: int | None = None,
    ) -> TcpConnection:
        local_ip = src or self.node.address
        local_port = self._ephemeral_port()
        conn = TcpConnection(self, local_ip, local_port, dst, dport)
        conn.on_established = on_established
        conn.on_data = on_data
        conn.on_close = on_close
        if max_retransmits is not None:
            conn.max_retransmits = max_retransmits
        if not self._admit(conn):
            raise SocketError(f"{self.node.name}: connection table full")
        conn._start_active()
        return conn

    def reset_all(self, *, send_rst: bool = False) -> None:
        """Tear down every connection — a process crash losing all state.

        With ``send_rst=False`` (a true crash) peers hear nothing and must
        discover the loss through their own retransmission budgets; with
        ``send_rst=True`` each peer gets a RST, as an orderly shutdown or a
        rebooting kernel would produce.
        """
        for conn in list(self.connections.values()):
            if send_rst:
                conn.abort()
            else:
                conn._teardown(error=True)
        self._time_wait.clear()

    # -- demux ---------------------------------------------------------------------

    def demux(self, packet: Packet, segment: TcpSegment) -> None:
        cost = self.segment_cost_fn(self) if self.segment_cost_fn else 0.0
        if cost > 0.0:
            if not self.node.cpu.submit(cost, self._process, packet, segment):
                self.segments_dropped_cpu += 1
            return
        self._process(packet, segment)

    def _process(self, packet: Packet, segment: TcpSegment) -> None:
        self.segments_received += 1
        key = (packet.dst, segment.dport, packet.src, segment.sport)
        conn = self.connections.get(key)
        if conn is not None:
            conn.handle(segment)
            return
        linger_until = self._time_wait.get(key)
        if linger_until is not None:
            if segment.has(TcpFlags.SYN) and not segment.has(TcpFlags.ACK):
                del self._time_wait[key]  # a fresh connect reusing the pair
            elif self.node.sim.now < linger_until:
                self.stale_segments += 1  # old duplicate; TIME_WAIT eats it
                return
            else:
                del self._time_wait[key]
        listener = self._listener_for(packet.dst, segment.dport)
        if listener is None:
            return  # silently ignore, as a stealthy host would
        if segment.has(TcpFlags.RST):
            return  # RST for a connection we no longer know about
        if segment.has(TcpFlags.SYN) and not segment.has(TcpFlags.ACK):
            listener.syns_received += 1
            if listener.syn_cookies:
                # stateless: SYN-ACK whose ISN is the cookie
                isn = self._syn_cookie(packet.dst, segment.dport, packet.src, segment.sport)
                reply = TcpSegment(
                    sport=segment.dport,
                    dport=segment.sport,
                    seq=isn,
                    ack=(segment.seq + 1) & 0xFFFFFFFF,
                    flags=TcpFlags.SYN | TcpFlags.ACK,
                )
                self._transmit(packet.dst, packet.src, reply)
            else:
                conn = TcpConnection(self, packet.dst, segment.dport, packet.src, segment.sport)
                if self._admit(conn):
                    conn._start_passive(segment)
            return
        if segment.has(TcpFlags.ACK) and listener.syn_cookies:
            isn = self._syn_cookie(packet.dst, segment.dport, packet.src, segment.sport)
            if segment.ack == (isn + 1) & 0xFFFFFFFF:
                conn = TcpConnection(self, packet.dst, segment.dport, packet.src, segment.sport)
                if not self._admit(conn):
                    return
                conn._start_from_cookie(segment, isn)
                listener.on_connection(conn)
                if segment.data or segment.has(TcpFlags.FIN):
                    conn.handle(segment)
            elif segment.data or segment.has(TcpFlags.FIN):
                # Handshake completions acknowledge the cookie ISN exactly;
                # a data/FIN segment pointing elsewhere is an old duplicate
                # from a closed connection, not a forged cookie.
                self.stale_segments += 1
            else:
                listener.cookies_rejected += 1
                self.cookie_failures += 1

    # -- internals ---------------------------------------------------------------

    def _listener_for(self, ip: IPv4Address, port: int) -> Listener | None:
        return self._listeners.get((ip, port)) or self._listeners.get((None, port))

    def _transmit(self, src: IPv4Address, dst: IPv4Address, segment: TcpSegment) -> None:
        cost = self.segment_cost_fn(self) if self.segment_cost_fn else 0.0
        packet = Packet(src=src, dst=dst, segment=segment)
        if cost > 0.0:
            if not self.node.cpu.submit(cost, self._send_packet, packet):
                self.segments_dropped_cpu += 1
            return
        self._send_packet(packet)

    def _send_packet(self, packet: Packet) -> None:
        from .errors import RoutingError

        try:
            self.node.send(packet)
        except RoutingError:
            # replying to a spoofed/unroutable peer: the packet just vanishes
            self.segments_unroutable += 1

    def _next_isn(self) -> int:
        self._isn_counter = (self._isn_counter + 64000) & 0xFFFFFFFF
        return self._isn_counter

    def _ephemeral_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 65535:
            self._next_ephemeral = 32768
        return port

    def _syn_cookie(self, lip: IPv4Address, lport: int, rip: IPv4Address, rport: int) -> int:
        """Stateless ISN: keyed hash of the 4-tuple (Bernstein's SYN cookie)."""
        material = self._cookie_secret + lip.packed + rip.packed + struct.pack(
            "!HH", lport, rport
        )
        digest = hashlib.md5(material).digest()
        return struct.unpack("!I", digest[:4])[0]

    def _admit(self, conn: TcpConnection) -> bool:
        """Add ``conn`` to the table, refusing once it is full.

        Refusal is the SYN-queue-overflow behaviour: the segment that
        would have created state is treated as never having arrived.
        """
        if len(self.connections) >= MAX_CONNECTIONS:
            self.connections_refused += 1
            return False
        self.connections[conn.key] = conn
        return True

    def _forget(self, conn: TcpConnection, *, linger: bool = False) -> None:
        self.connections.pop(conn.key, None)
        if linger:
            if len(self._time_wait) >= TIME_WAIT_CAP:
                # lazily purge expired entries; if nothing has expired,
                # displace oldest-first so the cap actually holds
                now = self.node.sim.now
                self._time_wait = {
                    key: until for key, until in self._time_wait.items() if until > now
                }
                while len(self._time_wait) >= TIME_WAIT_CAP:
                    del self._time_wait[next(iter(self._time_wait))]
            self._time_wait[conn.key] = self.node.sim.now + TIME_WAIT_LINGER

    @property
    def open_connections(self) -> int:
        return len(self.connections)
