"""Discrete-event network simulator: nodes, links, CPU model, UDP and TCP."""

from .address import SubnetAllocator
from .cpu import Cpu
from .errors import (
    AddressError,
    ConnectionError_,
    NetsimError,
    RoutingError,
    SocketError,
)
from .link import GilbertElliottLoss, Link, LossModel
from .netfilter import Chain, Hook, PacketFilter, Rule, Verdict
from .node import Node
from .packet import (
    DnsPayload,
    IP_HEADER_BYTES,
    Packet,
    RawPayload,
    TCP_HEADER_BYTES,
    TcpFlags,
    TcpSegment,
    UDP_HEADER_BYTES,
    UdpDatagram,
)
from .simulator import (
    BOUNDARY_PRIORITY,
    DEFAULT_PRIORITY,
    EventHandle,
    EventTrace,
    Simulator,
    TieEvent,
    set_observability,
    set_tie_hook,
    set_trace_collector,
)
from .trace import PacketTracer, TraceRecord
from .tcp import (
    DEFAULT_RTO,
    Listener,
    MAX_RETRANSMITS,
    MAX_RTO,
    TIME_WAIT_LINGER,
    MSS,
    TcpConnection,
    TcpStack,
    TcpState,
)
from .udp import UdpSocket, UdpStack

__layer__ = "platform"

__all__ = [
    "AddressError",
    "BOUNDARY_PRIORITY",
    "Chain",
    "ConnectionError_",
    "Cpu",
    "Hook",
    "PacketFilter",
    "Rule",
    "Verdict",
    "DEFAULT_PRIORITY",
    "DEFAULT_RTO",
    "DnsPayload",
    "EventHandle",
    "EventTrace",
    "GilbertElliottLoss",
    "IP_HEADER_BYTES",
    "Link",
    "Listener",
    "LossModel",
    "MAX_RETRANSMITS",
    "MAX_RTO",
    "TIME_WAIT_LINGER",
    "MSS",
    "NetsimError",
    "Node",
    "Packet",
    "PacketTracer",
    "TraceRecord",
    "RawPayload",
    "RoutingError",
    "SocketError",
    "Simulator",
    "SubnetAllocator",
    "set_observability",
    "set_tie_hook",
    "set_trace_collector",
    "TCP_HEADER_BYTES",
    "TieEvent",
    "TcpConnection",
    "TcpFlags",
    "TcpSegment",
    "TcpStack",
    "TcpState",
    "UDP_HEADER_BYTES",
    "UdpDatagram",
    "UdpSocket",
    "UdpStack",
]
