"""Deterministic discrete-event simulation core.

The :class:`Simulator` owns virtual time and a binary-heap event queue.
Everything in the testbed — link propagation, CPU service completion,
retransmission timers, load generators — is an event scheduled here, so a
run with the same seed is bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "cancelled")

    def __init__(self, time: float):
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event's callback from running (idempotent)."""
        self.cancelled = True


class Simulator:
    """A seeded, deterministic discrete-event simulator.

    Events scheduled for the same instant fire in scheduling order, which
    keeps runs reproducible regardless of callback content.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._queue: list[tuple[float, int, EventHandle, Callable[..., Any], tuple]] = []
        self._sequence = itertools.count()
        self._events_processed = 0

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule {delay} seconds in the past")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        handle = EventHandle(time)
        heapq.heappush(self._queue, (time, next(self._sequence), handle, callback, args))
        return handle

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        while self._queue:
            time, _, handle, callback, args = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.now = time
            self._events_processed += 1
            callback(*args)
            return True
        return False

    def _next_event_time(self) -> float | None:
        """Time of the next live event, discarding cancelled tombstones."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the queue drains, ``until`` passes, or
        ``max_events`` fire.

        With ``until`` set, virtual time is advanced to exactly ``until``
        even if the queue drains early, so rate calculations stay honest.
        """
        remaining = max_events
        while True:
            next_time = self._next_event_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if remaining is not None:
                if remaining == 0:
                    return
                remaining -= 1
            self.step()
        if until is not None and self.now < until:
            self.now = until

    @property
    def events_processed(self) -> int:
        """Total events executed so far (diagnostic)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events currently queued, including cancelled tombstones."""
        return len(self._queue)
