"""Deterministic discrete-event simulation core.

The :class:`Simulator` owns virtual time and a binary-heap event queue.
Everything in the testbed — link propagation, CPU service completion,
retransmission timers, load generators — is an event scheduled here, so a
run with the same seed is bit-for-bit reproducible.

That reproducibility claim is machine-checked rather than folklore:

* ``repro.analysis`` lints the source tree for determinism hazards
  (wall-clock reads, unseeded randomness, unordered iteration feeding the
  scheduler);
* an :class:`EventTrace` can hash the full executed event sequence —
  ``Simulator(trace_hash=True)`` — and the runtime sanitizer
  (:mod:`repro.analysis.sanitizer`, ``python -m repro <cmd> --sanitize``)
  runs an experiment twice under allocation perturbation and compares
  traces, reporting the first divergent event on mismatch.

Simultaneity semantics (see DESIGN.md, "Simultaneity semantics"): events
share an *instant* when they have equal virtual time.  Within an instant,
events run in (priority, insertion) order — the **boundary lane**
(:data:`BOUNDARY_PRIORITY`) models instantaneous state transitions (fault
onset, soft-state expiry sweeps) that by contract apply *before* any
same-instant traffic in the default lane; within one lane the tie-break
is FIFO on scheduling order.  Events at equal ``(time, priority)`` form a
*tie group*; the race detector (:mod:`repro.analysis.races`) observes and
permutes tie groups through the hook installed by :func:`set_tie_hook`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import itertools
import math
import random  # repro: allow[D002] - this module IS the seeded-RNG plumbing
import sys
from typing import Any, Callable

#: Events per rolling-hash checkpoint in :class:`EventTrace`.  Checkpoints
#: let the sanitizer localise a divergence to a ~256-event window without
#: storing per-event state on the (cheap) first pass.
TRACE_CHECKPOINT_INTERVAL = 256

#: Default scheduling lane: ordinary traffic and timers.
DEFAULT_PRIORITY = 0

#: The boundary lane: state transitions that apply "at the start of the
#: instant" — fault onset/revert, expiry sweeps, idle-connection reaping.
#: Two events at the same virtual time but in different lanes are ordered
#: by contract, not by scheduling accident, so they never form a tie group
#: and the race detector does not treat their interleaving as a race.
BOUNDARY_PRIORITY = -1

#: Tombstone compaction floor: heaps smaller than this are never rebuilt
#: (the scan would cost more than the tombstones do).
_COMPACT_MIN_TOMBSTONES = 64


def _describe_value(value: Any) -> str:
    """A deterministic, id-free description of a callback argument.

    ``repr`` of an arbitrary object embeds its memory address, which differs
    between two runs in the same process — exactly the noise a determinism
    trace must not contain.  Only types whose representations are known to
    be stable are rendered in full; everything else falls back to its type
    name plus a ``name`` attribute when one exists (nodes, links and most
    testbed actors carry one).  Objects may opt into richer descriptions by
    defining ``trace_digest() -> str``.
    """
    digest_fn = getattr(value, "trace_digest", None)
    if callable(digest_fn):
        return str(digest_fn())
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, (tuple, list)):
        inner = ",".join(_describe_value(item) for item in value)
        return f"[{inner}]" if isinstance(value, list) else f"({inner})"
    cls = type(value)
    # ipaddress / enum / Name-style value objects have stable reprs and no
    # trace_digest hook; detect them by module rather than trusting every
    # custom __repr__ (dataclass reprs recurse into fields that may not be
    # stable).
    if cls.__module__ in ("ipaddress", "enum"):
        return str(value)
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return f"{cls.__qualname__}<{name}>"
    return cls.__qualname__


def _describe_callback(callback: Callable[..., Any]) -> str:
    """Stable label for an event callback: qualname plus owner identity."""
    func = callback
    prefix = ""
    partial_args = getattr(callback, "func", None)
    if partial_args is not None and hasattr(callback, "args"):  # functools.partial
        func = callback.func  # type: ignore[union-attr]
        prefix = "partial:"
    qualname = getattr(func, "__qualname__", None) or type(func).__qualname__
    owner = getattr(func, "__self__", None)
    if owner is not None:
        owner_name = getattr(owner, "name", None)
        if isinstance(owner_name, str):
            return f"{prefix}{qualname}<{owner_name}>"
    return prefix + qualname


class EventTrace:
    """A rolling hash of every event a :class:`Simulator` executes.

    Each executed event contributes a deterministic description — virtual
    time, scheduling sequence number, callback qualified name, argument
    digests — to a BLAKE2b rolling hash.  Two runs of the same experiment
    are event-for-event identical iff their final digests match.

    Modes:

    * default ("hash"): O(1) memory — the rolling hash plus one checkpoint
      digest every :data:`TRACE_CHECKPOINT_INTERVAL` events, enough for the
      sanitizer to bracket a divergence cheaply;
    * ``keep_events=True``: additionally store an 8-byte digest and the full
      description per event (up to ``event_limit`` events), enabling exact
      first-divergence localisation.
    """

    __slots__ = (
        "count",
        "checkpoints",
        "keep_events",
        "event_limit",
        "event_digests",
        "descriptions",
        "_hash",
    )

    def __init__(self, *, keep_events: bool = False, event_limit: int | None = None):
        self._hash = hashlib.blake2b(digest_size=16)
        self.count = 0
        self.checkpoints: list[bytes] = []
        self.keep_events = keep_events
        self.event_limit = event_limit
        self.event_digests = bytearray()  # 8 bytes per recorded event
        self.descriptions: list[str] = []

    def record(
        self, time: float, sequence: int, callback: Callable[..., Any], args: tuple
    ) -> None:
        """Fold one executed event into the trace."""
        arg_text = ",".join(_describe_value(a) for a in args)
        description = f"t={time!r} #{sequence} {_describe_callback(callback)}({arg_text})"
        self._hash.update(description.encode("utf-8", "backslashreplace"))
        self._hash.update(b"\x00")
        self.count += 1
        if self.keep_events and (
            self.event_limit is None or self.count <= self.event_limit
        ):
            self.event_digests += self._hash.digest()[:8]
            self.descriptions.append(description)
        if self.count % TRACE_CHECKPOINT_INTERVAL == 0:
            self.checkpoints.append(self._hash.digest())

    @property
    def recorded(self) -> int:
        """Events with stored per-event digests (≤ ``count``)."""
        return len(self.event_digests) // 8

    def event_digest(self, index: int) -> bytes:
        """The 8-byte cumulative digest after recorded event ``index``."""
        return bytes(self.event_digests[index * 8 : index * 8 + 8])

    def digest(self) -> bytes:
        return self._hash.digest()

    def hexdigest(self) -> str:
        """Hex digest over all events executed so far."""
        return self._hash.hexdigest()


class _TraceCollectorProtocol:
    """What :func:`set_trace_collector` expects (duck-typed).

    ``keep_events``/``event_limit`` configure traces of newly constructed
    simulators; ``register(sim)`` is called once per simulator at
    construction, in construction order.
    """

    keep_events: bool
    event_limit: int | None

    def register(self, sim: "Simulator") -> None:  # pragma: no cover - protocol
        raise NotImplementedError


_active_collector: _TraceCollectorProtocol | None = None


def set_trace_collector(
    collector: _TraceCollectorProtocol | None,
) -> _TraceCollectorProtocol | None:
    """Install a process-wide trace collector; returns the previous one.

    While a collector is installed, every newly constructed
    :class:`Simulator` gets an :class:`EventTrace` (configured from the
    collector) and is registered with it.  The determinism sanitizer uses
    this to observe simulators an experiment builds internally.
    """
    global _active_collector
    previous = _active_collector
    _active_collector = collector
    return previous


#: Process-wide observability context (see :mod:`repro.obs`).  Duck-typed
#: for the same reason the trace collector is: netsim must not import obs.
_active_obs = None


def set_observability(obs):
    """Install a process-wide observability context; returns the previous one.

    While installed, every newly constructed :class:`Simulator` calls
    ``obs.register(sim)`` so the context can follow the virtual clock and
    (optionally) profile the event loop.  The context is observe-only:
    installing one never changes the event sequence.
    """
    global _active_obs
    previous = _active_obs
    _active_obs = obs
    return previous


@dataclasses.dataclass(slots=True)
class TieEvent:
    """One not-yet-executed event of a tie group, as hooks see it."""

    time: float
    priority: int
    seq: int
    handle: "EventHandle"
    callback: Callable[..., Any]
    args: tuple
    #: ``(filename, lineno)`` of the scheduling call site, captured only
    #: while a tie hook is installed (provenance for race reports).
    site: tuple[str, int] | None = None


class _TieHookProtocol:
    """What :func:`set_tie_hook` expects (duck-typed).

    ``register(sim)`` is called once per simulator at construction, in
    construction order.  ``on_group(sim, events)`` receives every tie
    group (same virtual time, same priority lane) just before it executes
    and may return a reordered list of the same events (or None to keep
    FIFO order).  ``before_event``/``after_event`` bracket each executed
    callback; ``end_group(sim)`` fires once the group has drained.
    Cancellations performed *inside* a tie group are still honoured: a
    cancelled member is skipped at execution time, not at grouping time.
    """

    def register(self, sim: "Simulator") -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def on_group(self, sim, events):  # pragma: no cover - protocol
        return None

    def before_event(self, sim, event) -> None:  # pragma: no cover - protocol
        pass

    def after_event(self, sim, event) -> None:  # pragma: no cover - protocol
        pass

    def end_group(self, sim) -> None:  # pragma: no cover - protocol
        pass


_active_tie_hook: _TieHookProtocol | None = None


def set_tie_hook(hook: _TieHookProtocol | None) -> _TieHookProtocol | None:
    """Install a process-wide tie-group hook; returns the previous one.

    While a hook is installed, every newly constructed :class:`Simulator`
    steps through tie groups (batches of same-time, same-priority events)
    and reports them to the hook — the race detector's interference
    sanitizer and schedule-permutation explorer plug in here.  With no
    hook (the default) the event loop takes the ungrouped fast path and
    the execution order is identical.
    """
    global _active_tie_hook
    previous = _active_tie_hook
    _active_tie_hook = hook
    return previous


def _caller_site() -> tuple[str, int] | None:
    """(filename, lineno) of the nearest frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:
        return None
    return (frame.f_code.co_filename, frame.f_lineno)


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "cancelled", "_sim")

    def __init__(self, time: float, sim: "Simulator | None" = None):
        self.time = time
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event's callback from running (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()


class Simulator:
    """A seeded, deterministic discrete-event simulator.

    Events scheduled for the same instant fire in scheduling order, which
    keeps runs reproducible regardless of callback content.

    With ``trace_hash=True`` (or while a sanitizer trace collector is
    installed) every executed event is folded into ``self.trace``, an
    :class:`EventTrace` whose digest fingerprints the entire run.
    """

    def __init__(self, seed: int = 0, *, trace_hash: bool = False):
        self.now: float = 0.0
        self.seed = seed
        self.rng = random.Random(seed)
        self._child_rngs: dict[str, random.Random] = {}
        # heap entries: (time, priority, seq, handle, callback, args)
        self._queue: list[
            tuple[float, int, int, EventHandle, Callable[..., Any], tuple]
        ] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        #: Cancelled entries still sitting in the heap (see _note_cancelled).
        self._tombstones = 0
        #: The tie group currently executing, as not-yet-run TieEvents.
        self._tie_buffer: list[TieEvent] = []
        self._group_open = False
        #: seq -> scheduling call site, populated only while a tie hook is
        #: installed (the frame walk is not free).
        self._sites: dict[int, tuple[str, int] | None] = {}
        self._tie_hook = _active_tie_hook
        if self._tie_hook is not None:
            self._tie_hook.register(self)
        #: Observability context attached to this simulator (see repro.obs).
        #: None in the common case; instrumentation sites gate on it.
        self.obs = None
        #: Wall-clock profiler bracketing each event callback when set.
        self.step_profiler = None
        if _active_obs is not None:
            _active_obs.register(self)
        collector = _active_collector
        self.trace: EventTrace | None
        if collector is not None:
            self.trace = EventTrace(
                keep_events=collector.keep_events, event_limit=collector.event_limit
            )
            collector.register(self)
        elif trace_hash:
            self.trace = EventTrace()
        else:
            self.trace = None

    # -- randomness --------------------------------------------------------

    def child_rng(self, name: str) -> random.Random:
        """A named RNG stream derived deterministically from the seed.

        Orthogonal subsystems (fault injection, background noise, …) must
        not draw from ``self.rng`` directly: an extra draw would shift every
        subsequent value the core simulation sees, so merely *enabling* such
        a subsystem would perturb the whole event trace.  A child stream is
        seeded from ``(seed, name)`` only — same seed and name, same stream,
        regardless of what any other stream has consumed.  Repeated calls
        with the same name return the same (stateful) instance.
        """
        rng = self._child_rngs.get(name)
        if rng is None:
            material = f"{self.seed}\x00{name}".encode("utf-8", "backslashreplace")
            derived = hashlib.blake2b(material, digest_size=8).digest()
            rng = random.Random(int.from_bytes(derived, "big"))
            self._child_rngs[name] = rng
        return rng

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time.

        ``priority`` selects the lane within an instant; pass
        :data:`BOUNDARY_PRIORITY` for state transitions that must apply
        before same-instant default-lane traffic.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule {delay} seconds in the past")
        return self.schedule_at(self.now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if not math.isfinite(time):
            raise ValueError(f"cannot schedule at non-finite time {time!r}")
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        handle = EventHandle(time, self)
        seq = next(self._sequence)
        if self._tie_hook is not None:
            self._sites[seq] = _caller_site()
        heapq.heappush(self._queue, (time, priority, seq, handle, callback, args))
        return handle

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Process one live event.  Returns False when the queue is empty."""
        if self._tie_buffer and self._step_buffered():
            return True
        if self._tie_hook is None:
            # Fast path: no grouping, no site bookkeeping — identical event
            # order to the grouped path, minus the hook brackets.
            while self._queue:
                time, _priority, sequence, handle, callback, args = heapq.heappop(
                    self._queue
                )
                if handle.cancelled:
                    handle._sim = None
                    self._tombstones -= 1
                    continue
                handle._sim = None
                self.now = time
                self._events_processed += 1
                if self.trace is not None:
                    self.trace.record(time, sequence, callback, args)
                profiler = self.step_profiler
                if profiler is None:
                    callback(*args)
                else:
                    t0 = profiler.begin()
                    callback(*args)
                    profiler.record(
                        callback, profiler.elapsed_since(t0), self.live_pending_events
                    )
                return True
            return False
        while self._pop_tie_group():
            if self._step_buffered():
                return True
        return False

    def _pop_tie_group(self) -> bool:
        """Pop all live events at the next ``(time, priority)`` into the
        tie buffer, offering the group to the hook.  Returns False when the
        heap has no live events left."""
        queue = self._queue
        while queue:
            time, priority, seq, handle, callback, args = heapq.heappop(queue)
            site = self._sites.pop(seq, None)
            handle._sim = None
            if handle.cancelled:
                self._tombstones -= 1
                continue
            group = [TieEvent(time, priority, seq, handle, callback, args, site)]
            while queue and queue[0][0] == time and queue[0][1] == priority:
                _, _, seq2, handle2, callback2, args2 = heapq.heappop(queue)
                site2 = self._sites.pop(seq2, None)
                handle2._sim = None
                if handle2.cancelled:
                    self._tombstones -= 1
                    continue
                group.append(
                    TieEvent(time, priority, seq2, handle2, callback2, args2, site2)
                )
            hook = self._tie_hook
            if hook is not None:
                reordered = hook.on_group(self, group)
                if reordered is not None:
                    group = list(reordered)
            self._tie_buffer = group
            self._group_open = True
            return True
        return False

    def _step_buffered(self) -> bool:
        """Execute the next live event of the current tie group."""
        buffer = self._tie_buffer
        hook = self._tie_hook
        while buffer:
            event = buffer.pop(0)
            if event.handle.cancelled:
                # Cancelled by an earlier member of the same tie group:
                # honoured exactly as if it were still in the heap.
                continue
            self.now = event.time
            self._events_processed += 1
            if self.trace is not None:
                self.trace.record(event.time, event.seq, event.callback, event.args)
            if hook is not None:
                hook.before_event(self, event)
            profiler = self.step_profiler
            if profiler is None:
                event.callback(*event.args)
            else:
                t0 = profiler.begin()
                event.callback(*event.args)
                profiler.record(
                    event.callback,
                    profiler.elapsed_since(t0),
                    self.live_pending_events,
                )
            if hook is not None:
                hook.after_event(self, event)
            while buffer and buffer[0].handle.cancelled:
                buffer.pop(0)
            if not buffer:
                self._close_group()
            return True
        self._close_group()
        return False

    def _close_group(self) -> None:
        if not self._group_open:
            return
        self._group_open = False
        hook = self._tie_hook
        if hook is not None:
            hook.end_group(self)

    # -- heap hygiene ------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` for handles still in the
        heap; compacts once tombstones dominate the live entries."""
        self._tombstones += 1
        if (
            self._tombstones > _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled tombstones."""
        live = []
        for entry in self._queue:
            handle = entry[3]
            if handle.cancelled:
                handle._sim = None
                self._sites.pop(entry[2], None)
            else:
                live.append(entry)
        heapq.heapify(live)
        self._queue = live
        self._tombstones = 0

    def _next_event_time(self) -> float | None:
        """Time of the next live event, discarding cancelled tombstones."""
        buffer = self._tie_buffer
        if buffer:
            while buffer and buffer[0].handle.cancelled:
                buffer.pop(0)
            if buffer:
                return buffer[0].time
            self._close_group()
        while self._queue and self._queue[0][3].cancelled:
            _, _, seq, handle, _, _ = heapq.heappop(self._queue)
            handle._sim = None
            self._tombstones -= 1
            self._sites.pop(seq, None)
        return self._queue[0][0] if self._queue else None

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the queue drains, ``until`` passes, or
        ``max_events`` fire.

        With ``until`` set, virtual time is advanced to exactly ``until``
        even if the queue drains early, so rate calculations stay honest.
        """
        remaining = max_events
        while True:
            next_time = self._next_event_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if remaining is not None:
                if remaining == 0:
                    return
                remaining -= 1
            self.step()
        if until is not None and self.now < until:
            self.now = until

    @property
    def events_processed(self) -> int:
        """Total events executed so far (diagnostic)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events currently queued, including cancelled tombstones."""
        return len(self._queue) + len(self._tie_buffer)

    @property
    def live_pending_events(self) -> int:
        """Queued events that will actually fire (tombstones excluded).

        Prefer this over :attr:`pending_events` in reports and profiles:
        the raw heap length overstates queue depth by however many
        cancelled retransmission timers are still awaiting compaction.
        """
        live = len(self._queue) - self._tombstones
        for event in self._tie_buffer:
            if not event.handle.cancelled:
                live += 1
        return live
