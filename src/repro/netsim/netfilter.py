"""A netfilter-style packet filter: hooks, chains, rules, verdicts.

The paper deploys the DNS guard "in the iptable module"; this is the
simulator's equivalent mechanism.  Each node can own a
:class:`PacketFilter` with the classic five hooks; chains hold ordered
:class:`Rule` objects with match predicates and verdicts (or callable
targets), falling through to a per-chain policy.  Per-rule packet/byte
counters match what ``iptables -L -v`` would show.

The DNS guard itself predates this layer in the codebase and uses the
``Node.transit_filter`` middlebox hook directly; the packet filter is the
general-purpose tool for everything else — edge ingress filtering
(RFC 2827, the §II related-work baseline), port blocking, rate limiting.
"""

from __future__ import annotations

import dataclasses
import enum
from ipaddress import IPv4Address, IPv4Network
from typing import Callable, TYPE_CHECKING

from .packet import Packet, TcpSegment, UdpDatagram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node


class Hook(enum.Enum):
    """Where in a node's packet path a chain runs."""

    PREROUTING = "prerouting"  # every packet arriving on any link
    LOCAL_IN = "input"  # packets delivered to this node's stacks
    FORWARD = "forward"  # packets routed through this node
    LOCAL_OUT = "output"  # packets originated by this node


class Verdict(enum.Enum):
    ACCEPT = "accept"
    DROP = "drop"


Match = Callable[[Packet], bool]
Target = Callable[[Packet], Verdict]


@dataclasses.dataclass(slots=True)
class Rule:
    """One chain entry: a match predicate plus a verdict or callable target."""

    match: Match
    verdict: Verdict | None = None
    target: Target | None = None
    comment: str = ""
    packets: int = 0
    bytes: int = 0

    def __post_init__(self) -> None:
        if (self.verdict is None) == (self.target is None):
            raise ValueError("a rule needs exactly one of verdict/target")

    def evaluate(self, packet: Packet) -> Verdict | None:
        """The rule's verdict for ``packet``, or None if it doesn't match."""
        if not self.match(packet):
            return None
        self.packets += 1
        self.bytes += packet.size
        if self.verdict is not None:
            return self.verdict
        return self.target(packet)  # type: ignore[misc]


class Chain:
    """An ordered rule list with a fall-through policy."""

    def __init__(self, policy: Verdict = Verdict.ACCEPT):
        self.policy = policy
        self.rules: list[Rule] = []
        self.policy_packets = 0

    def append(self, rule: Rule) -> Rule:
        self.rules.append(rule)
        return rule

    def insert(self, index: int, rule: Rule) -> Rule:
        self.rules.insert(index, rule)
        return rule

    def evaluate(self, packet: Packet) -> Verdict:
        for rule in self.rules:  # repro: allow[P005] ordered first-match traversal is the netfilter chain contract
            verdict = rule.evaluate(packet)
            if verdict is not None:
                return verdict
        self.policy_packets += 1
        return self.policy

    def flush(self) -> None:
        self.rules.clear()


class PacketFilter:
    """Per-node chain table, evaluated by the node's packet path."""

    def __init__(self) -> None:
        self.chains: dict[Hook, Chain] = {hook: Chain() for hook in Hook}

    def chain(self, hook: Hook) -> Chain:
        return self.chains[hook]

    def evaluate(self, hook: Hook, packet: Packet) -> Verdict:
        return self.chains[hook].evaluate(packet)

    def append(
        self,
        hook: Hook,
        match: Match,
        verdict: Verdict | None = None,
        *,
        target: Target | None = None,
        comment: str = "",
    ) -> Rule:
        """Convenience: build and append a rule in one call."""
        rule = Rule(match=match, verdict=verdict, target=target, comment=comment)
        return self.chains[hook].append(rule)


# ---------------------------------------------------------------------------
# Match helpers (the common iptables matchers)
# ---------------------------------------------------------------------------

def match_all(packet: Packet) -> bool:
    return True


def src_in(subnet: IPv4Network | str) -> Match:
    network = IPv4Network(subnet) if isinstance(subnet, str) else subnet
    return lambda packet: packet.src in network


def src_not_in(subnet: IPv4Network | str) -> Match:
    inside = src_in(subnet)
    return lambda packet: not inside(packet)


def dst_is(address: IPv4Address | str) -> Match:
    target = IPv4Address(address) if isinstance(address, str) else address
    return lambda packet: packet.dst == target


def udp_dport(port: int) -> Match:
    return lambda packet: (
        isinstance(packet.segment, UdpDatagram) and packet.segment.dport == port
    )


def tcp_dport(port: int) -> Match:
    return lambda packet: (
        isinstance(packet.segment, TcpSegment) and packet.segment.dport == port
    )


def conjunction(*matches: Match) -> Match:
    return lambda packet: all(match(packet) for match in matches)


def rate_limit_target(rate: float, burst: float, clock: Callable[[], float]) -> Target:
    """An iptables ``-m limit``-style target: ACCEPT within the budget."""
    from ..guard.ratelimit import TokenBucket

    bucket = TokenBucket(rate, burst)

    def target(packet: Packet) -> Verdict:
        return Verdict.ACCEPT if bucket.consume(clock()) else Verdict.DROP

    return target
