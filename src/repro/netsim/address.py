"""IPv4 address allocation helpers built on :mod:`ipaddress`.

The testbed assigns addresses out of named subnets (the guard's protected
subnet ``1.2.3.0/24`` matters to the fabricated-NS-IP cookie scheme, whose
strength is the usable host range ``R_y``).
"""

from __future__ import annotations

from ipaddress import IPv4Address, IPv4Network

from .errors import AddressError


class SubnetAllocator:
    """Hands out host addresses from one IPv4 subnet, in order."""

    def __init__(self, network: IPv4Network | str):
        if isinstance(network, str):
            network = IPv4Network(network)
        self.network = network
        self._hosts = network.hosts()
        self._allocated: set[IPv4Address] = set()

    def allocate(self) -> IPv4Address:
        """The next free host address in the subnet."""
        for candidate in self._hosts:
            if candidate not in self._allocated:
                self._allocated.add(candidate)
                return candidate
        raise AddressError(f"subnet {self.network} exhausted")

    def claim(self, address: IPv4Address | str) -> IPv4Address:
        """Reserve a specific address (e.g. a well-known server IP)."""
        if isinstance(address, str):
            address = IPv4Address(address)
        if address not in self.network:
            raise AddressError(f"{address} is not in {self.network}")
        if address in self._allocated:
            raise AddressError(f"{address} already allocated")
        self._allocated.add(address)
        return address

    def host_range(self) -> int:
        """Number of usable host addresses — the paper's ``R_y``."""
        return self.network.num_addresses - 2 if self.network.prefixlen < 31 else (
            self.network.num_addresses
        )

    def __contains__(self, address: IPv4Address) -> bool:
        return address in self.network
