"""Packets: IP carrying either a UDP datagram or a TCP segment.

DNS payloads travel by reference (a parsed :class:`~repro.dnswire.Message`
plus its cached wire size) so the simulator does not pay for a full
encode/decode on every hop at 250K packets/sec.  The wire codec is still
what defines each packet's size, and edges that need real bytes (the TCP
stream, tests) can ask for them.
"""

from __future__ import annotations

import dataclasses
import enum
from ipaddress import IPv4Address
from typing import Union

from ..dnswire import Message

IP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
TCP_HEADER_BYTES = 20


class DnsPayload:
    """A DNS message riding in a UDP datagram, with cached wire size."""

    __slots__ = ("message", "_size")

    def __init__(self, message: Message, size: int | None = None):
        self.message = message
        self._size = size

    @property
    def size(self) -> int:
        if self._size is None:
            self._size = self.message.wire_size()
        return self._size

    @property
    def wire(self) -> bytes:
        return self.message.encode()

    def __repr__(self) -> str:
        return f"DnsPayload({self.message.header.msg_id}, {self.size}B)"


class RawPayload:
    """Arbitrary bytes in a UDP datagram (junk floods, probes)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = data

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def wire(self) -> bytes:
        return self.data


@dataclasses.dataclass(slots=True)
class UdpDatagram:
    """A UDP datagram."""

    sport: int
    dport: int
    payload: DnsPayload | RawPayload

    @property
    def size(self) -> int:
        return UDP_HEADER_BYTES + self.payload.size


class TcpFlags(enum.IntFlag):
    """TCP control flags we model."""

    SYN = 0x02
    ACK = 0x10
    FIN = 0x01
    RST = 0x04


@dataclasses.dataclass(slots=True)
class TcpSegment:
    """A TCP segment carrying a slice of the byte stream."""

    sport: int
    dport: int
    seq: int
    ack: int
    flags: TcpFlags
    data: bytes = b""

    @property
    def size(self) -> int:
        return TCP_HEADER_BYTES + len(self.data)

    def has(self, flag: TcpFlags) -> bool:
        return bool(self.flags & flag)


Segment = Union[UdpDatagram, TcpSegment]


@dataclasses.dataclass(slots=True)
class Packet:
    """An IPv4 packet.  ``src`` is whatever the sender claims — spoofable.

    ``ttl`` starts at the sender's initial value and is decremented at each
    router hop; defence baselines like hop-count filtering read it.
    """

    src: IPv4Address
    dst: IPv4Address
    segment: Segment
    ttl: int = 64
    #: Observability span that originated this packet (see repro.obs).
    #: Pure metadata: excluded from trace_digest and never read by the
    #: simulation itself, so carrying a span cannot alter behaviour.
    span: object | None = None

    @property
    def size(self) -> int:
        """Total on-the-wire size in bytes, including the IP header."""
        return IP_HEADER_BYTES + self.segment.size

    @property
    def protocol(self) -> str:
        return "udp" if isinstance(self.segment, UdpDatagram) else "tcp"

    def __repr__(self) -> str:
        return f"Packet({self.src}->{self.dst} {self.protocol} {self.size}B)"

    def trace_digest(self) -> str:
        """Deterministic, id-free fingerprint for determinism event traces.

        Captures addressing, ports and payload identity without touching
        ``repr`` of payload objects (whose default representations embed
        memory addresses that vary across runs).
        """
        seg = self.segment
        if isinstance(seg, UdpDatagram):
            payload = seg.payload
            if isinstance(payload, DnsPayload):
                detail = f"dns:{payload.message.header.msg_id}:{payload.size}"
            else:
                detail = f"raw:{payload.size}"
            seg_text = f"udp:{seg.sport}>{seg.dport}:{detail}"
        else:
            seg_text = (
                f"tcp:{seg.sport}>{seg.dport}:s{seg.seq}:a{seg.ack}"
                f":f{int(seg.flags)}:{len(seg.data)}"
            )
        return f"pkt[{self.src}>{self.dst}:ttl{self.ttl}:{seg_text}]"
