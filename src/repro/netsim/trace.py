"""Packet tracing: a tcpdump for the simulated network.

A :class:`PacketTracer` taps the links of one node — or several — and
records every packet that crosses them.  Captures can be narrowed with
src/dst/protocol filters (or an arbitrary predicate) and bounded with
``max_records`` so tracing a long attack run cannot grow memory without
limit; packets past the cap are counted in ``truncated``, not stored.

Used by tests and experiments to verify, for example, the paper's §IV.D
packet-count arithmetic — a cache-hit exchange really is 4 packets at
the guard, a cache miss 6, the fabricated variant 8.
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address
from typing import Callable, Iterable

from .link import Link
from .node import Node
from .packet import Packet, TcpSegment, UdpDatagram


@dataclasses.dataclass(slots=True)
class TraceRecord:
    """One captured packet."""

    time: float
    src: IPv4Address
    dst: IPv4Address
    protocol: str
    size: int
    sport: int
    dport: int
    info: str

    def __str__(self) -> str:
        return (
            f"{self.time * 1000:9.3f}ms {self.src}:{self.sport} > "
            f"{self.dst}:{self.dport} {self.protocol} {self.size}B {self.info}"
        )


def _describe(packet: Packet) -> tuple[int, int, str]:
    segment = packet.segment
    if isinstance(segment, UdpDatagram):
        payload = segment.payload
        message = getattr(payload, "message", None)
        if message is not None:
            kind = "query" if message.is_query() else "response"
            qname = str(message.question.qname) if message.questions else "?"
            return segment.sport, segment.dport, f"DNS {kind} {qname}"
        return segment.sport, segment.dport, "UDP data"
    assert isinstance(segment, TcpSegment)
    flags = []
    from .packet import TcpFlags

    for flag in (TcpFlags.SYN, TcpFlags.ACK, TcpFlags.FIN, TcpFlags.RST):
        if segment.has(flag):
            flags.append(flag.name)
    label = "/".join(flags) or "DATA"
    if segment.data:
        label += f"+{len(segment.data)}B"
    return segment.sport, segment.dport, f"TCP {label}"


class PacketTracer:
    """Captures packets crossing the tapped nodes' links (both directions).

    ``nodes`` may be a single :class:`Node` or an iterable of nodes; a
    link shared by two tapped nodes is tapped once.  Installed by wrapping
    each link's ``transmit``; captures therefore see exactly what the wire
    sees, including retransmissions, and drops at the link layer are
    recorded as sent-by-the-origin attempts.

    Filters (all optional, all AND-ed):

    * ``src`` / ``dst`` — match the packet's claimed source / destination;
    * ``protocol`` — ``"udp"`` or ``"tcp"``;
    * ``filter_fn`` — arbitrary ``Packet -> bool`` predicate.

    With ``max_records`` set, packets matching the filters once the store
    is full are counted in ``truncated`` instead of recorded.
    """

    def __init__(
        self,
        nodes: Node | Iterable[Node],
        *,
        filter_fn: Callable[[Packet], bool] | None = None,
        src: IPv4Address | str | None = None,
        dst: IPv4Address | str | None = None,
        protocol: str | None = None,
        max_records: int | None = None,
    ):
        if isinstance(nodes, Node):
            node_list = [nodes]
        else:
            node_list = list(nodes)
        if not node_list:
            raise ValueError("PacketTracer needs at least one node to tap")
        if protocol is not None and protocol not in ("udp", "tcp"):
            raise ValueError(f"unknown protocol filter {protocol!r}")
        if max_records is not None and max_records < 0:
            raise ValueError("max_records must be non-negative")
        self.nodes = node_list
        #: First tapped node — kept for single-node back-compat.
        self.node = node_list[0]
        self.filter_fn = filter_fn
        self.src = IPv4Address(src) if isinstance(src, str) else src
        self.dst = IPv4Address(dst) if isinstance(dst, str) else dst
        self.protocol_filter = protocol
        self.max_records = max_records
        self.records: list[TraceRecord] = []
        #: Packets that matched the filters but were not stored (at cap).
        self.truncated = 0
        self._originals: list[tuple[Link, Callable]] = []
        seen: set[int] = set()
        for node in node_list:
            for link in node.links:
                if id(link) in seen:
                    continue
                seen.add(id(link))
                self._tap(link)

    def _matches(self, packet: Packet) -> bool:
        if self.src is not None and packet.src != self.src:
            return False
        if self.dst is not None and packet.dst != self.dst:
            return False
        if self.protocol_filter is not None and packet.protocol != self.protocol_filter:
            return False
        if self.filter_fn is not None and not self.filter_fn(packet):
            return False
        return True

    def _tap(self, link: Link) -> None:
        original = link.transmit

        def tapped(packet: Packet, sender: Node, _original=original, _link=link) -> bool:
            if self._matches(packet):
                if self.max_records is not None and len(self.records) >= self.max_records:
                    self.truncated += 1
                else:
                    sport, dport, info = _describe(packet)
                    self.records.append(
                        TraceRecord(
                            time=_link.sim.now,
                            src=packet.src,
                            dst=packet.dst,
                            protocol=packet.protocol,
                            size=packet.size,
                            sport=sport,
                            dport=dport,
                            info=info,
                        )
                    )
            return _original(packet, sender)

        # let the profiler attribute tapped transmissions to Link.transmit
        # instead of this closure's qualname
        tapped.__wrapped__ = original  # type: ignore[attr-defined]
        link.transmit = tapped  # type: ignore[method-assign]
        self._originals.append((link, original))

    def detach(self) -> None:
        """Remove the taps, restoring the links' original transmit."""
        for link, original in self._originals:
            link.transmit = original  # type: ignore[method-assign]
        self._originals.clear()

    # -- analysis helpers -----------------------------------------------------

    def clear(self) -> None:
        self.records.clear()
        self.truncated = 0

    def __len__(self) -> int:
        return len(self.records)

    def packets(self, *, protocol: str | None = None) -> list[TraceRecord]:
        if protocol is None:
            return list(self.records)
        return [r for r in self.records if r.protocol == protocol]

    def between(self, a: IPv4Address, b: IPv4Address) -> list[TraceRecord]:
        """Packets exchanged between two addresses, either direction."""
        return [
            r
            for r in self.records
            if (r.src == a and r.dst == b) or (r.src == b and r.dst == a)
        ]

    def total_bytes(self) -> int:
        return sum(r.size for r in self.records)

    def dump(self) -> str:
        lines = [str(r) for r in self.records]
        if self.truncated:
            lines.append(f"... {self.truncated} packets not captured (max_records cap)")
        return "\n".join(lines)
