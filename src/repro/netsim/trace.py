"""Packet tracing: a tcpdump for the simulated network.

A :class:`PacketTracer` taps one node's links and records every packet that
crosses them.  Used by tests and experiments to verify, for example, the
paper's §IV.D packet-count arithmetic — a cache-hit exchange really is 4
packets at the guard, a cache miss 6, the fabricated variant 8.
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address
from typing import Callable

from .link import Link
from .node import Node
from .packet import Packet, TcpSegment, UdpDatagram


@dataclasses.dataclass(slots=True)
class TraceRecord:
    """One captured packet."""

    time: float
    src: IPv4Address
    dst: IPv4Address
    protocol: str
    size: int
    sport: int
    dport: int
    info: str

    def __str__(self) -> str:
        return (
            f"{self.time * 1000:9.3f}ms {self.src}:{self.sport} > "
            f"{self.dst}:{self.dport} {self.protocol} {self.size}B {self.info}"
        )


def _describe(packet: Packet) -> tuple[int, int, str]:
    segment = packet.segment
    if isinstance(segment, UdpDatagram):
        payload = segment.payload
        message = getattr(payload, "message", None)
        if message is not None:
            kind = "query" if message.is_query() else "response"
            qname = str(message.question.qname) if message.questions else "?"
            return segment.sport, segment.dport, f"DNS {kind} {qname}"
        return segment.sport, segment.dport, "UDP data"
    assert isinstance(segment, TcpSegment)
    flags = []
    from .packet import TcpFlags

    for flag in (TcpFlags.SYN, TcpFlags.ACK, TcpFlags.FIN, TcpFlags.RST):
        if segment.has(flag):
            flags.append(flag.name)
    label = "/".join(flags) or "DATA"
    if segment.data:
        label += f"+{len(segment.data)}B"
    return segment.sport, segment.dport, f"TCP {label}"


class PacketTracer:
    """Captures packets crossing a node's links (both directions).

    Installed by wrapping each link's ``transmit``; captures therefore see
    exactly what the wire sees, including retransmissions, and drops at the
    link layer are recorded as sent-by-the-origin attempts.
    """

    def __init__(self, node: Node, *, filter_fn: Callable[[Packet], bool] | None = None):
        self.node = node
        self.filter_fn = filter_fn
        self.records: list[TraceRecord] = []
        self._originals: list[tuple[Link, Callable]] = []
        for link in node.links:
            self._tap(link)

    def _tap(self, link: Link) -> None:
        original = link.transmit

        def tapped(packet: Packet, sender: Node, _original=original) -> bool:
            if self.filter_fn is None or self.filter_fn(packet):
                sport, dport, info = _describe(packet)
                self.records.append(
                    TraceRecord(
                        time=self.node.sim.now,
                        src=packet.src,
                        dst=packet.dst,
                        protocol=packet.protocol,
                        size=packet.size,
                        sport=sport,
                        dport=dport,
                        info=info,
                    )
                )
            return _original(packet, sender)

        link.transmit = tapped  # type: ignore[method-assign]
        self._originals.append((link, original))

    def detach(self) -> None:
        """Remove the taps, restoring the links' original transmit."""
        for link, original in self._originals:
            link.transmit = original  # type: ignore[method-assign]
        self._originals.clear()

    # -- analysis helpers -----------------------------------------------------

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def packets(self, *, protocol: str | None = None) -> list[TraceRecord]:
        if protocol is None:
            return list(self.records)
        return [r for r in self.records if r.protocol == protocol]

    def between(self, a: IPv4Address, b: IPv4Address) -> list[TraceRecord]:
        """Packets exchanged between two addresses, either direction."""
        return [
            r
            for r in self.records
            if (r.src == a and r.dst == b) or (r.src == b and r.dst == a)
        ]

    def total_bytes(self) -> int:
        return sum(r.size for r in self.records)

    def dump(self) -> str:
        return "\n".join(str(r) for r in self.records)
