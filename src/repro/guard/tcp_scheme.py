"""The kernel-level transparent TCP proxy (paper §III.C).

The guard answers a suspect UDP query with TC=1; the requester falls back
to TCP.  TCP's handshake echoes the server ISN, so a completed connection
proves the source address — the sequence number *is* the cookie.  The proxy:

* terminates connections addressed to the protected ANS (DNAT-style — the
  connection's local address is the ANS's own IP, which the guard spoofs on
  replies, so the requester never notices the interception);
* runs with SYN cookies, so half-open floods leave no state;
* converts each framed DNS query into a UDP request to the ANS and frames
  the UDP response back onto the connection;
* polices abuse: per-client token buckets on connection setup, and a reaper
  that removes connections living longer than ``reap_rtt_multiple`` × RTT
  (the paper uses 5×).
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import TYPE_CHECKING

from ..dnswire import Message
from ..dns.framing import StreamFramer, frame
from ..netsim import BOUNDARY_PRIORITY, TcpConnection, TcpState
from .core.admission import MIN_REAP_SECONDS, REAP_RTT_MULTIPLE, reap_deadline
from .core.ratelimit import TokenBucket

__layer__ = "adapter"

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import RemoteDnsGuard

#: Trust boundary for the flow analyser (``repro.analysis.flow``).  The
#: TCP scheme has no taint sources on purpose: a connection only reaches
#: ``_on_connection`` after the three-way handshake, and the handshake
#: proving the peer's address is enforced *structurally* by the S-rules
#: over ``repro.netsim.tcp`` (every path to ESTABLISHED must cross the
#: ISN echo check), not by per-field taint tracking here.
__trust_boundary__ = {
    "scheme": "tcp",
    "entry_points": [],
    "taint_params": [],
    "assumes": (
        "conn.remote is handshake-proven (S004/S005 on repro.netsim.tcp); "
        "queries arriving over a proven connection are admitted by design "
        "— §III.C: the sequence number is the cookie"
    ),
}

#: Shared-state declaration for the race analyser
#: (``repro.analysis.races``).
__shared_state__ = {
    "TcpProxy": {
        "guarded": ["_client_buckets"],
        "commutative": [
            "requests_proxied",
            "connections_accepted",
            "connections_rate_limited",
            "connections_reaped",
            "malformed_streams",
        ],
    },
}

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``).  Rate-limit buckets are keyed by the
#: remote address of a *completed* handshake — address-proven, but still
#: attacker-growable by completing handshakes from many real sources —
#: so the table displaces oldest-first at its cap.  (Connection state
#: itself lives in ``TcpStack.connections``, bounded there.)
__state_bounds__ = {
    "TcpProxy": {
        "_client_buckets": {
            "bound": 8192,
            "evicted_by": "cap",
            "keyed_by": "attacker",
        },
    },
}


class TcpProxy:
    """Transparent DNS-over-TCP terminator in front of the ANS."""

    def __init__(
        self,
        guard: "RemoteDnsGuard",
        *,
        new_connection_rate: float = 50.0,
        new_connection_burst: float = 100.0,
        reap_rtt_multiple: float = REAP_RTT_MULTIPLE,
        response_timeout: float = 2.0,
    ):
        self.guard = guard
        self.node = guard.node
        self.new_connection_rate = new_connection_rate
        self.new_connection_burst = new_connection_burst
        self.reap_rtt_multiple = reap_rtt_multiple
        self.response_timeout = response_timeout
        self.requests_proxied = 0
        self.connections_accepted = 0
        self.connections_rate_limited = 0
        self.connections_reaped = 0
        self.malformed_streams = 0
        self._client_buckets: dict[IPv4Address, TokenBucket] = {}
        costs = guard.costs
        self.node.tcp.segment_cost_fn = lambda stack: costs.tcp_segment_cost(
            len(stack.connections)
        )
        self.listener = self.node.tcp.listen(53, self._on_connection, syn_cookies=True)

    # -- connection handling ------------------------------------------------------

    def _on_connection(self, conn: TcpConnection) -> None:
        now = self.node.sim.now
        bucket = self._client_buckets.get(conn.remote_ip)
        if bucket is None:
            bucket = TokenBucket(self.new_connection_rate, self.new_connection_burst, now=now)
            self._client_buckets[conn.remote_ip] = bucket
            if len(self._client_buckets) > 8192:
                self._client_buckets.pop(next(iter(self._client_buckets)))
        if not bucket.consume(now):
            self.connections_rate_limited += 1
            self.guard._note("tcp", "conn_rate_limited")
            conn.abort()
            return
        self.connections_accepted += 1
        self.guard._note("tcp", "conn_accept")
        framer = StreamFramer()
        conn.on_data = lambda c, data: self._on_stream_data(c, framer, data)
        self._arm_reaper(conn)

    def _arm_reaper(self, conn: TcpConnection) -> None:
        deadline = reap_deadline(conn.rtt, self.reap_rtt_multiple)

        def reap() -> None:
            if conn.state is not TcpState.CLOSED:
                self.connections_reaped += 1
                self.guard._note("tcp", "conn_reaped")
                conn.abort()

        # Boundary lane: reaping is an expiry sweep — it applies before any
        # same-instant segment delivery on the doomed connection.
        self.node.sim.schedule(deadline, reap, priority=BOUNDARY_PRIORITY)

    def _on_stream_data(self, conn: TcpConnection, framer: StreamFramer, data: bytes) -> None:
        if data == b"":
            conn.close()
            return
        from ..dnswire import DecodeError

        try:
            queries = framer.feed(data)
        except DecodeError:
            # a malformed DNS stream: hang up rather than crash
            self.malformed_streams += 1
            conn.abort()
            return
        for query in queries:
            self._proxy_query(conn, query)

    # -- UDP conversion --------------------------------------------------------------

    def _proxy_query(self, conn: TcpConnection, query: Message) -> None:
        guard = self.guard
        if not query.is_query() or not query.questions:
            return
        if not guard.rl2.allow(conn.remote_ip, self.node.sim.now):
            guard.rl2_drops += 1
            return
        # charge the UDP-side work (query out + response in)
        if not self.node.cpu.submit(
            2 * guard.costs.per_packet, self._send_upstream, conn, query
        ):
            return

    def _send_upstream(self, conn: TcpConnection, query: Message) -> None:
        node = self.node
        msg_id = query.header.msg_id
        socket = None

        def finish() -> None:
            if socket is not None:
                socket.close()
            timer.cancel()

        def on_response(
            payload: Message | bytes, src: IPv4Address, sport: int, dst: IPv4Address
        ) -> None:
            if not isinstance(payload, Message) or payload.header.msg_id != msg_id:
                return
            finish()
            self.requests_proxied += 1
            self.guard._note("tcp", "proxied")
            if conn.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
                conn.send(frame(payload))

        socket = node.udp.bind_ephemeral(on_response)
        timer = node.sim.schedule(self.response_timeout, finish)
        socket.send(query, self.guard.ans_address, 53)
