"""Entropy adapter over the pure cookie core (:mod:`repro.guard.core.cookie`).

The cookie state machine — generation, the three encodings, dual-key
verification, rotation parity — lives in the pure core, which never
draws entropy of its own.  This shim is the platform seam: it supplies
the OS-entropy defaults a production deployment wants (``random_key()``
with no argument, ``CookieFactory.rotate()`` with no key) while seeded
simulator components keep passing the simulator's ``rng`` explicitly.
Everything else re-exports unchanged.
"""

from __future__ import annotations

import secrets

from .core.cookie import (
    KEY_LENGTH,
    LABEL_COOKIE_LENGTH,
    LABEL_HEX_DIGITS,
    LABEL_PREFIX,
    CookieFactory as _CoreCookieFactory,
    random_key as _core_random_key,
)
from .core.ports import Rng

__layer__ = "adapter"

__all__ = [
    "KEY_LENGTH",
    "LABEL_COOKIE_LENGTH",
    "LABEL_HEX_DIGITS",
    "LABEL_PREFIX",
    "CookieFactory",
    "random_key",
]


def random_key(rng: Rng | None = None) -> bytes:
    """A fresh 76-byte secret key.

    Simulated components must pass the seeded ``Simulator.rng`` so key
    material — and everything derived from it: cookie values, fabricated
    addresses, packet bytes — replays exactly from the seed.  The OS-entropy
    default exists for production deployments only.
    """
    if rng is None:
        return secrets.token_bytes(KEY_LENGTH)  # repro: allow[D002] - production default, never inside a seeded run
    return _core_random_key(rng)


class CookieFactory(_CoreCookieFactory):
    """The core factory plus OS-entropy construction/rotation defaults.

    ``CookieFactory(key)`` and ``rotate(new_key)`` behave exactly as the
    core; omitting the key draws from OS entropy via :func:`random_key`,
    which a seeded run must never do (pass ``random_key(sim.rng)``).
    """

    def __init__(
        self,
        key: bytes | None = None,
        *,
        generation: int = 0,
        label_hex_digits: int = LABEL_HEX_DIGITS,
    ):
        super().__init__(
            key if key is not None else random_key(),
            generation=generation,
            label_hex_digits=label_hex_digits,
        )

    def rotate(self, new_key: bytes | None = None) -> None:
        """Install a new key; the old one remains valid for one generation."""
        super().rotate(new_key if new_key is not None else random_key())
