"""Cookie generation, encoding and verification (paper §III.E) — pure core.

The cookie for a requester at ``source_ip`` is::

    c = MD5(source_ip || key)

with a 76-byte secret key, so the hash input is the 80 bytes MD5 consumes in
a single block.  Three encodings of ``c`` are used by the schemes:

* **full cookie** — all 16 bytes, carried in the modified-DNS TXT extension;
* **NS-label cookie** — a 10-byte label prefix: 2-byte marker (``PR``) plus
  8 hex characters encoding the first 4 bytes of ``c`` (range 2^32);
* **IP cookie** — ``y = first4(c) mod R_y``, the host part of a fabricated
  address inside the guard's subnet (range R_y).

Key rotation (§III.E, last paragraph): the first bit of every issued cookie
is overwritten with the key *generation* parity.  On verification the guard
picks the current or previous key by that bit, so rotating keys weekly never
invalidates cookies mid-TTL and costs exactly one MD5 per check.

This module is the pure half of the seam: every byte of randomness comes
in through the :class:`~repro.guard.core.ports.Rng` port (or an explicit
``key`` argument), so the same state machine drives the deterministic
simulator and a future socket front end.  The OS-entropy defaults live in
the adapter shim :mod:`repro.guard.cookie`.
"""

from __future__ import annotations

import hashlib
from ipaddress import IPv4Address

from .ports import Rng

__layer__ = "pure-core"

#: Trust boundary for the flow analyser (``repro.analysis.flow``): the
#: scheme is exactly as strong as key secrecy, so T002 tracks the key
#: attributes and producers named here (they are also the repo-wide
#: defaults).  MD5 over the key is the *cookie* — sent to clients by
#: design — hence hashlib.md5 declassifies.
__trust_boundary__ = {
    "scheme": "cookie-core",
    "secret_attrs": ["_current_key", "_previous_key"],
    "secret_calls": ["random_key", "export_state"],
    "declassifiers": ["hashlib.md5"],
    "assumes": (
        "export_state() output is persisted state handed to restart(), "
        "never telemetry; anything else carrying SEC into a log, repr, "
        "or obs exporter is a T002 key leak"
    ),
}

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``): honestly empty.  The cookie core is
#: stateless by design — §IV.B's one-MD5-per-check works from two fixed
#: keys and the query itself; there is no per-source table to exhaust.
__state_bounds__ = {}

#: Key length chosen so key+IPv4 fills one 80-byte MD5 input block.
KEY_LENGTH = 76

#: Marker prefix distinguishing cookie labels from normal names.
LABEL_PREFIX = b"PR"

#: Hex characters of cookie material in an NS-label cookie (4 bytes).
LABEL_HEX_DIGITS = 8

#: Full length of the cookie part of a label: prefix + hex digits.
LABEL_COOKIE_LENGTH = len(LABEL_PREFIX) + LABEL_HEX_DIGITS


def random_key(rng: Rng) -> bytes:
    """A fresh 76-byte secret key drawn from the injected ``rng`` port.

    Simulated components pass the seeded ``Simulator.rng`` so key
    material — and everything derived from it: cookie values, fabricated
    addresses, packet bytes — replays exactly from the seed.  The
    OS-entropy convenience default lives in the adapter
    (:func:`repro.guard.cookie.random_key`), never here: the core draws
    no entropy of its own.
    """
    return bytes(rng.getrandbits(8) for _ in range(KEY_LENGTH))


class CookieFactory:
    """Computes and verifies cookies under the current (and previous) key.

    ``label_hex_digits`` sets how much cookie material an NS-label cookie
    carries (§III.E: "Different DNS guards can also choose to use different
    number of bytes for COOKIE") — the label-cookie range is
    16^label_hex_digits.  Must be even (hex pairs) and at most 32.

    ``key`` is required: the core never invents entropy.  The adapter
    subclass in :mod:`repro.guard.cookie` supplies the OS-entropy default
    for production construction.
    """

    def __init__(
        self,
        key: bytes,
        *,
        generation: int = 0,
        label_hex_digits: int = LABEL_HEX_DIGITS,
    ):
        self._current_key = key
        self._validate_key(self._current_key)
        if label_hex_digits % 2 or not 2 <= label_hex_digits <= 32:
            raise ValueError("label_hex_digits must be even and within 2..32")
        self.label_hex_digits = label_hex_digits
        self._previous_key: bytes | None = None
        self.generation = generation
        self.computations = 0

    @property
    def label_cookie_length(self) -> int:
        """Total bytes of a label cookie: marker prefix plus hex digits."""
        return len(LABEL_PREFIX) + self.label_hex_digits

    @staticmethod
    def _validate_key(key: bytes) -> None:
        if len(key) != KEY_LENGTH:
            raise ValueError(f"key must be {KEY_LENGTH} bytes, got {len(key)}")

    # -- persistence --------------------------------------------------------------

    def export_state(self) -> bytes:
        """Serialise key material so a restarted guard honours old cookies.

        Layout: 1 byte flags (bit 0: previous key present), 4 bytes
        generation (big endian), current key, then the previous key if any.
        """
        flags = 1 if self._previous_key is not None else 0
        blob = bytes([flags]) + self.generation.to_bytes(4, "big") + self._current_key
        if self._previous_key is not None:
            blob += self._previous_key
        return blob

    @classmethod
    def import_state(cls, blob: bytes, *, label_hex_digits: int = LABEL_HEX_DIGITS) -> "CookieFactory":
        """Rebuild a factory from :meth:`export_state` output."""
        if len(blob) < 5 + KEY_LENGTH:
            raise ValueError("cookie state blob too short")
        flags = blob[0]
        generation = int.from_bytes(blob[1:5], "big")
        current = blob[5 : 5 + KEY_LENGTH]
        factory = cls(current, generation=generation, label_hex_digits=label_hex_digits)
        if flags & 1:
            previous = blob[5 + KEY_LENGTH : 5 + 2 * KEY_LENGTH]
            if len(previous) != KEY_LENGTH:
                raise ValueError("cookie state blob truncated")
            factory._previous_key = previous
        return factory

    # -- rotation ---------------------------------------------------------------

    def rotate(self, new_key: bytes) -> None:
        """Install a new key; the old one remains valid for one generation."""
        self._validate_key(new_key)
        self._previous_key = self._current_key
        self._current_key = new_key
        self.generation += 1

    # -- computation -------------------------------------------------------------

    def _raw(self, source_ip: IPv4Address, key: bytes) -> bytes:
        self.computations += 1
        return hashlib.md5(source_ip.packed + key).digest()

    def _stamp_generation(self, cookie: bytes, generation: int) -> bytes:
        """Overwrite the first bit with the generation parity."""
        first = cookie[0] & 0x7F
        if generation & 1:
            first |= 0x80
        return bytes([first]) + cookie[1:]

    def cookie(self, source_ip: IPv4Address) -> bytes:
        """The 16-byte cookie for ``source_ip`` under the current key."""
        raw = self._raw(source_ip, self._current_key)
        return self._stamp_generation(raw, self.generation)

    def verify(self, cookie: bytes, source_ip: IPv4Address) -> bool:
        """Check a full 16-byte cookie, honouring the generation bit."""
        if len(cookie) != 16:
            return False
        indicated_parity = cookie[0] >> 7
        if indicated_parity == (self.generation & 1):
            key, generation = self._current_key, self.generation
        elif self._previous_key is not None:
            key, generation = self._previous_key, self.generation - 1
        else:
            return False
        expected = self._stamp_generation(self._raw(source_ip, key), generation)
        return cookie == expected

    # -- NS-label encoding ---------------------------------------------------------

    def label_cookie(self, source_ip: IPv4Address) -> bytes:
        """The cookie prefix for a fabricated NS label: ``PR`` + hex digits."""
        c = self.cookie(source_ip)
        material = c[: self.label_hex_digits // 2]
        return LABEL_PREFIX + material.hex().encode("ascii")

    def verify_label(self, label_cookie: bytes, source_ip: IPv4Address) -> bool:
        """Check an NS-label cookie against ``source_ip``.

        Matching is case-insensitive (marker and hex digits) so DNS-0x20
        resolvers, which randomise query-name casing, verify cleanly.
        """
        if len(label_cookie) != self.label_cookie_length:
            return False
        if label_cookie[: len(LABEL_PREFIX)].upper() != LABEL_PREFIX:
            return False
        try:
            presented = bytes.fromhex(label_cookie[len(LABEL_PREFIX):].decode("ascii"))
        except (ValueError, UnicodeDecodeError):
            return False
        # the generation bit lives in the first of these 4 bytes
        indicated_parity = presented[0] >> 7
        if indicated_parity == (self.generation & 1):
            key, generation = self._current_key, self.generation
        elif self._previous_key is not None:
            key, generation = self._previous_key, self.generation - 1
        else:
            return False
        expected = self._stamp_generation(self._raw(source_ip, key), generation)
        return presented == expected[: self.label_hex_digits // 2]

    # -- IP-cookie encoding ----------------------------------------------------------

    def ip_cookie(self, source_ip: IPv4Address, host_range: int) -> int:
        """``y`` for the fabricated COOKIE2 address: first4(c) mod R_y."""
        if host_range <= 0:
            raise ValueError("host_range must be positive")
        c = self.cookie(source_ip)
        return int.from_bytes(c[:4], "big") % host_range

    def verify_ip_cookie(self, y: int, source_ip: IPv4Address, host_range: int) -> bool:
        """Check a fabricated-address host index, under both key generations."""
        if not 0 <= y < host_range:
            return False
        current = int.from_bytes(self.cookie(source_ip)[:4], "big") % host_range
        if y == current:
            return True
        if self._previous_key is None:
            return False
        previous_raw = self._stamp_generation(
            self._raw(source_ip, self._previous_key), self.generation - 1
        )
        return y == int.from_bytes(previous_raw[:4], "big") % host_range
