"""The ports the pure guard core is allowed to see the world through.

The core never imports the simulator, the observability layer, sockets
or asyncio — L001/L006 enforce that.  Anything environmental reaches it
through one of three narrow injected seams:

* :class:`Clock` — a monotonically non-decreasing ``now()``.  Adapters
  pass ``Simulator.now`` (virtual time) or a socket front end's
  monotonic clock; the core itself mostly takes ``now`` as an explicit
  argument, which is the same seam with even less surface.
* :class:`Rng` — seeded randomness for key material.  Adapters pass the
  simulator's seeded ``random.Random`` (replayable traces) or, in a
  production deployment, an OS-entropy adapter.
* :class:`Emit` — a fire-and-forget observation callback for decision
  telemetry.  :data:`NULL_EMIT` is the default: the core stays silent
  and side-effect-free unless an adapter wires the seam.

These are structural protocols, not base classes: any object with the
right methods satisfies them, so the simulator adapters need no core
import beyond this module.
"""

from __future__ import annotations

from typing import Protocol

__layer__ = "pure-core"


class Clock(Protocol):
    """Injected time source: seconds as a float, origin unspecified."""

    def now(self) -> float: ...


class Rng(Protocol):
    """Injected randomness: the ``random.Random`` surface the core uses."""

    def getrandbits(self, k: int) -> int: ...


class Emit(Protocol):
    """Injected observation sink for decision telemetry."""

    def __call__(self, event: str, detail: str) -> None: ...


def _null_emit(event: str, detail: str) -> None:
    """The default observation sink: drop everything."""
    return None


#: Default :class:`Emit` port — observation is opt-in, never load-bearing.
NULL_EMIT: Emit = _null_emit
