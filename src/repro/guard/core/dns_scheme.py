"""Message fabrication for the DNS-based scheme (paper §III.B, Figure 2).

The guard embeds a cookie in a fabricated NS name that is a *single label
directly under the protected zone's origin*.  That placement is the whole
trick: a standard resolver that wants the fabricated nameserver's address
has no choice but to ask the very servers authoritative for the origin —
i.e. the guard itself — and that follow-up query (message 3) carries the
cookie in its QNAME where the guard can verify it.

The label packs the 10-byte cookie (``PR`` + 8 hex chars) followed by the
original question's labels relative to the origin, dot-joined, so the guard
can restore the original query (message 4) statelessly.

Pure core: the codec is a function of the message and the origin alone —
no clock, no randomness, no transport.
"""

from __future__ import annotations

import dataclasses


from ...dnswire import (
    Message,
    Name,
    ResourceRecord,
    RRClass,
    RRType,
    NS,
    A,
    make_response,
)
from ...dnswire.types import MAX_LABEL_LENGTH
from .cookie import LABEL_COOKIE_LENGTH, LABEL_PREFIX

__layer__ = "pure-core"

#: Trust boundary for the flow analyser (``repro.analysis.flow``).  These
#: are pure codec helpers: :func:`decode_cookie_name` output is derived
#: entirely from the attacker-controlled QNAME and stays tainted in the
#: caller — verification happens in the pipeline via ``verify_label``,
#: never here.  No entry points, no sinks.
__trust_boundary__ = {
    "scheme": "ns_name",
    "entry_points": [],
    "taint_params": [],
    "assumes": (
        "decode output is untrusted parse structure; the pipeline must "
        "pass decoded.cookie_label through cookies.verify_label before "
        "acting on it (enforced there by T001)"
    ),
}

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``): honestly empty.  The NS-name codec is a
#: pure encode/decode layer — cookie material rides in the QNAME itself
#: (§III.B), so the scheme needs no per-query table on the server side.
__state_bounds__ = {}

#: Default TTL for fabricated NS records — one week, the paper's example
#: rotation interval, so cookies stay cached and most queries take 1 RTT.
FABRICATED_NS_TTL = 7 * 24 * 3600


@dataclasses.dataclass(frozen=True, slots=True)
class CookieName:
    """A decoded cookie-bearing QNAME."""

    cookie_label: bytes  # the 10-byte PR+hex prefix
    original_qname: Name  # the restored original question name


def encode_cookie_name(cookie_label: bytes, original_qname: Name, origin: Name) -> Name | None:
    """The fabricated NS target for ``original_qname``, or None if too long.

    Returns a name of exactly one label under ``origin``; the label is the
    cookie followed by the original name's origin-relative labels joined
    with literal dots (labels are binary-safe on the wire).
    """
    relative = original_qname.relativize(origin)
    label = cookie_label + b".".join(relative)
    if len(label) > MAX_LABEL_LENGTH:
        return None
    return Name((label, *origin.labels))


def decode_cookie_name(
    qname: Name, origin: Name, *, cookie_length: int = LABEL_COOKIE_LENGTH
) -> CookieName | None:
    """Parse a QNAME as a cookie name under ``origin``; None if it is not one.

    ``cookie_length`` is the deploying guard's configured label-cookie width
    (marker prefix plus hex digits).
    """
    if len(qname) != len(origin) + 1:
        return None
    if not qname.is_subdomain_of(origin):
        return None
    label = qname.labels[0]
    # the marker check is case-insensitive so DNS-0x20 resolvers (which
    # randomise the letter casing of every query) interoperate
    if label[:2].upper() != LABEL_PREFIX or len(label) < cookie_length:
        return None
    cookie_label = label[:cookie_length]
    suffix = label[cookie_length:]
    if suffix:
        parts = suffix.split(b".")
        if any(not part for part in parts):
            return None
        try:
            original = Name((*parts, *origin.labels))
        except Exception:
            return None
    else:
        original = origin
    return CookieName(cookie_label, original)


def delegation_owner(qname: Name, origin: Name) -> Name:
    """The name the fabricated referral claims is delegated.

    One label below the origin (``com`` for a root guard), so the requester
    caches the fabricated delegation at the same cut a real referral would
    use.  When ``qname`` is the origin itself, the origin is returned.
    """
    relative = qname.relativize(origin)
    if not relative:
        return qname
    return origin.child(relative[-1])


def fabricated_referral(
    query: Message, origin: Name, cookie_label: bytes, *, ttl: int = FABRICATED_NS_TTL
) -> Message | None:
    """Message 2: a referral whose NS name embeds the cookie (no glue).

    Returns None when the original name cannot fit in the cookie label — the
    caller should fall back to the TCP-based scheme.
    """
    qname = query.question.qname
    ns_target = encode_cookie_name(cookie_label, qname, origin)
    if ns_target is None:
        return None
    response = make_response(query)
    owner = delegation_owner(qname, origin)
    response.authorities.append(
        ResourceRecord(owner, RRType.NS, RRClass.IN, ttl, NS(ns_target))
    )
    return response


def cookie_name_answer(
    query: Message, addresses: list[ResourceRecord] | list, *, ttl: int | None = None
) -> Message:
    """Message 6: answer the cookie-name A query with the given addresses.

    ``addresses`` may be A ResourceRecords (referral glue, keeping their own
    TTLs) or raw IPv4 addresses (the COOKIE2 case, using ``ttl``).
    """
    response = make_response(query)
    qname = query.question.qname
    for item in addresses:
        if isinstance(item, ResourceRecord):
            response.answers.append(
                ResourceRecord(qname, RRType.A, RRClass.IN, item.ttl, item.rdata)
            )
        else:
            response.answers.append(
                ResourceRecord(
                    qname, RRType.A, RRClass.IN, ttl or FABRICATED_NS_TTL, A(item)
                )
            )
    return response
