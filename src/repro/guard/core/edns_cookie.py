"""RFC 7873 DNS Cookies — the pure codec and cookie computations.

The protocol half of :mod:`repro.guard.rfc7873`, with no simulator in
sight: the OPT-RR option codec, the stateless server-cookie computation
(RFC 7873 §6) and the per-(client, server) client-cookie derivation the
RFC recommends.  The middleboxes that move packets — the enforcement
guard and the LRS-side shim — stay in the adapter module and call down
into these.
"""

from __future__ import annotations

import hashlib
from ipaddress import IPv4Address

from ...dnswire import Message, Name, OPT, ResourceRecord, RRType

__layer__ = "pure-core"

#: Trust boundary for the flow analyser (``repro.analysis.flow``).  Pure
#: computation only: the keyed digests *are* the cookies, sent on the
#: wire by design, so the hash calls declassify; admission decisions are
#: made in the adapter (:mod:`repro.guard.rfc7873`), never here.
__trust_boundary__ = {
    "scheme": "rfc7873-core",
    "entry_points": [],
    "taint_params": [],
    "declassifiers": ["hashlib.md5"],
    "assumes": (
        "server_cookie/client cookie outputs are wire data; the adapter "
        "must route verification through EdnsCookieServer.verify before "
        "admitting (enforced there by T001)"
    ),
}

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``): honestly empty — RFC 7873 §6 recomputes
#: the server cookie per query, so the core holds no per-source state.
__state_bounds__ = {}

#: EDNS option code for COOKIE (RFC 7873).
OPTION_COOKIE = 10

#: Client cookie length (fixed by the RFC).
CLIENT_COOKIE_LENGTH = 8

#: Our server cookie length (the RFC allows 8-32).
SERVER_COOKIE_LENGTH = 16


def attach_edns_cookie(
    message: Message, client_cookie: bytes, server_cookie: bytes = b""
) -> Message:
    """Attach (or replace) an OPT RR carrying the COOKIE option, in place."""
    if len(client_cookie) != CLIENT_COOKIE_LENGTH:
        raise ValueError(f"client cookie must be {CLIENT_COOKIE_LENGTH} bytes")
    strip_edns_cookie(message)
    opt = OPT(options=((OPTION_COOKIE, client_cookie + server_cookie),))
    message.additionals.append(
        ResourceRecord(Name.root(), RRType.OPT, 4096, 0, opt)
    )
    return message


def extract_edns_cookie(message: Message) -> tuple[bytes, bytes] | None:
    """(client_cookie, server_cookie) from the OPT RR, or None."""
    for rr in message.additionals:
        if rr.rtype == RRType.OPT and isinstance(rr.rdata, OPT):
            payload = rr.rdata.option(OPTION_COOKIE)
            if payload is None or len(payload) < CLIENT_COOKIE_LENGTH:
                return None
            return payload[:CLIENT_COOKIE_LENGTH], payload[CLIENT_COOKIE_LENGTH:]
    return None


def strip_edns_cookie(message: Message) -> Message:
    """Remove any OPT RR so the protected ANS sees classic DNS."""
    message.additionals = [rr for rr in message.additionals if rr.rtype != RRType.OPT]
    return message


def derive_client_cookie(
    secret: bytes, client: IPv4Address, server: IPv4Address
) -> bytes:
    """The shim's per-(client, server) client cookie (RFC 7873 §4).

    A keyed digest over both addresses, as the RFC recommends, so one
    learned cookie never identifies the client to a different server.
    """
    material = secret + client.packed + server.packed
    return hashlib.md5(material).digest()[:CLIENT_COOKIE_LENGTH]


class EdnsCookieServer:
    """Stateless server-cookie computation (RFC 7873 §6)."""

    def __init__(self, key: bytes | None = None):
        self.key = key if key is not None else hashlib.md5(b"rfc7873").digest()
        self.computations = 0

    def server_cookie(self, client_cookie: bytes, source: IPv4Address) -> bytes:
        self.computations += 1
        material = client_cookie + source.packed + self.key
        return hashlib.md5(material).digest()[:SERVER_COOKIE_LENGTH]

    def verify(self, client_cookie: bytes, server_cookie: bytes, source: IPv4Address) -> bool:
        if len(server_cookie) != SERVER_COOKIE_LENGTH:
            return False
        return server_cookie == self.server_cookie(client_cookie, source)
