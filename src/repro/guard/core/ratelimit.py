"""Rate limiting for the guard pipeline (paper Figure 4).

* **Rate-Limiter1** caps the rate of *unverified* responses (cookie grants,
  fabricated referrals, truncation replies) per claimed requester, tracking
  the top requesters so the ANS cannot be used as a traffic reflector.
* **Rate-Limiter2** caps the *verified* request rate per real host, which is
  the defence against non-spoofed (zombie) floods and against probing
  attacks on the small COOKIE2 range (§III.G).

Both are built from token buckets.  The top-requester tracker uses the
space-saving algorithm so memory stays bounded no matter how many spoofed
sources an attacker invents.

Pure core: every method takes ``now`` explicitly (the Clock port as an
argument), draws no randomness and touches no transport — the same
accounting serves the simulator and a socket front end unchanged.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from ipaddress import IPv4Address

__layer__ = "pure-core"

#: Shared-state declaration for the race analyser
#: (``repro.analysis.races``).  Token-bucket state is guarded even though
#: refills look idempotent: ``consume`` at equal virtual time is
#: last-writer-wins on ``_tokens``.
__shared_state__ = {
    # ``rate``/``burst`` and the limiters' per-source settings are guarded
    # too since PR 7: the control plane hot-tunes them via ``reconfigure``
    # from its boundary-lane sweep, so they are scheduler-visible state.
    "TokenBucket": {"guarded": ["_tokens", "_updated_at", "rate", "burst"]},
    "TopRequesterTracker": {"guarded": ["_counts"], "commutative": ["total"]},
    "UnverifiedResponseLimiter": {
        "guarded": ["_buckets", "tracker", "per_source_rate", "per_source_burst"],
        "commutative": ["allowed", "denied"],
    },
    "VerifiedRequestLimiter": {
        "guarded": ["_buckets", "per_host_rate", "per_host_burst"],
        "commutative": ["allowed", "denied"],
    },
    "RateEstimator": {"guarded": ["_count", "_window_start", "_last_rate"]},
}

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``).  Each table is keyed by claimed source
#: address — spoofable by construction — so each carries its own
#: eviction: the limiters keep LRU-ordered buckets (``popitem`` at the
#: cap), the tracker is a space-saving heavy-hitter summary that
#: displaces its minimum-count victim at capacity.
__state_bounds__ = {
    "TopRequesterTracker": {
        "_counts": {"bound": 4096, "evicted_by": "cap", "keyed_by": "attacker"},
    },
    "UnverifiedResponseLimiter": {
        "_buckets": {"bound": 8192, "evicted_by": "lru", "keyed_by": "attacker"},
    },
    "VerifiedRequestLimiter": {
        "_buckets": {"bound": 8192, "evicted_by": "lru", "keyed_by": "attacker"},
    },
}


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/sec, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "_tokens", "_updated_at")

    def __init__(self, rate: float, burst: float, *, now: float = 0.0):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._updated_at = now

    def consume(self, now: float, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; returns False when over the limit."""
        if now > self._updated_at:
            self._tokens = min(self.burst, self._tokens + (now - self._updated_at) * self.rate)
            self._updated_at = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def available(self, now: float) -> float:
        if now > self._updated_at:
            self._tokens = min(self.burst, self._tokens + (now - self._updated_at) * self.rate)
            self._updated_at = now
        return self._tokens

    def reconfigure(self, rate: float, burst: float) -> None:
        """Hot-tune the bucket without resetting its fill level.

        The current fill is clamped to the new burst so tightening the
        limit takes effect immediately instead of after the old surplus
        drains.
        """
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = min(self._tokens, burst)


@dataclasses.dataclass(slots=True)
class _TopEntry:
    count: int
    error: int  # space-saving overestimation bound


class TopRequesterTracker:
    """Space-saving heavy-hitter tracker over source addresses.

    Holds at most ``capacity`` counters; the classic guarantee applies: any
    source with true count > N/capacity is present in the table.
    """

    __slots__ = ("capacity", "_counts", "total")

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._counts: dict[IPv4Address, _TopEntry] = {}
        self.total = 0

    def observe(self, source: IPv4Address) -> int:
        """Count one request from ``source``; returns its (over)count."""
        self.total += 1
        entry = self._counts.get(source)
        if entry is not None:
            entry.count += 1
            return entry.count
        if len(self._counts) < self.capacity:
            self._counts[source] = _TopEntry(count=1, error=0)
            return 1
        # evict the minimum counter, inheriting its count as error bound
        victim = min(self._counts, key=lambda ip: self._counts[ip].count)
        floor = self._counts.pop(victim).count
        self._counts[source] = _TopEntry(count=floor + 1, error=floor)
        return floor + 1

    def count(self, source: IPv4Address) -> int:
        entry = self._counts.get(source)
        return entry.count if entry else 0

    def top(self, k: int) -> list[tuple[IPv4Address, int]]:
        ranked = sorted(self._counts.items(), key=lambda item: item[1].count, reverse=True)
        return [(ip, entry.count) for ip, entry in ranked[:k]]


class UnverifiedResponseLimiter:
    """Rate-Limiter1: throttles unverified responses per claimed source.

    Every response to a not-yet-verified requester consumes from that
    requester's bucket; sources that are not heavy hitters effectively never
    hit the limit, while a reflection attack aimed at one victim address is
    clamped to ``per_source_rate`` responses/sec.
    """

    def __init__(
        self,
        *,
        per_source_rate: float = 100.0,
        per_source_burst: float = 200.0,
        tracker_capacity: int = 4096,
        max_buckets: int = 8192,
    ):
        self.per_source_rate = per_source_rate
        self.per_source_burst = per_source_burst
        self.tracker = TopRequesterTracker(tracker_capacity)
        self._buckets: OrderedDict[IPv4Address, TokenBucket] = OrderedDict()
        self._max_buckets = max_buckets
        self.allowed = 0
        self.denied = 0

    def allow(self, source: IPv4Address, now: float) -> bool:
        self.tracker.observe(source)
        bucket = self._buckets.get(source)
        if bucket is None:
            bucket = TokenBucket(self.per_source_rate, self.per_source_burst, now=now)
            self._buckets[source] = bucket
            if len(self._buckets) > self._max_buckets:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(source)
        if bucket.consume(now):
            self.allowed += 1
            return True
        self.denied += 1
        return False

    def reconfigure(self, rate: float, burst: float) -> None:
        """Hot-tune the per-source limit for existing and future buckets."""
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.per_source_rate = rate
        self.per_source_burst = burst
        for bucket in self._buckets.values():
            bucket.reconfigure(rate, burst)

    def reset(self) -> None:
        """Drop all soft state (bucket fill, heavy-hitter counts) — what a
        guard crash loses; configuration survives."""
        self._buckets.clear()
        self.tracker = TopRequesterTracker(self.tracker.capacity)


class VerifiedRequestLimiter:
    """Rate-Limiter2: per-verified-host request rate limit.

    The paper sets this to "a nominal rate, which is usually very low" —
    high enough for any real LRS, low enough that a single compromised host
    (or a correctly-guessed COOKIE2 value) cannot saturate the ANS.
    """

    def __init__(
        self,
        *,
        per_host_rate: float = 4000.0,
        per_host_burst: float = 8000.0,
        max_buckets: int = 8192,
    ):
        self.per_host_rate = per_host_rate
        self.per_host_burst = per_host_burst
        self._buckets: OrderedDict[IPv4Address, TokenBucket] = OrderedDict()
        self._max_buckets = max_buckets
        self.allowed = 0
        self.denied = 0

    def allow(self, source: IPv4Address, now: float) -> bool:
        bucket = self._buckets.get(source)
        if bucket is None:
            bucket = TokenBucket(self.per_host_rate, self.per_host_burst, now=now)
            self._buckets[source] = bucket
            if len(self._buckets) > self._max_buckets:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(source)
        if bucket.consume(now):
            self.allowed += 1
            return True
        self.denied += 1
        return False

    def reconfigure(self, rate: float, burst: float) -> None:
        """Hot-tune the per-host limit for existing and future buckets."""
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.per_host_rate = rate
        self.per_host_burst = burst
        for bucket in self._buckets.values():
            bucket.reconfigure(rate, burst)

    def reset(self) -> None:
        """Drop all soft state (bucket fill) — configuration survives."""
        self._buckets.clear()


class RateEstimator:
    """Sliding-window estimate of the incoming request rate.

    Drives the guard's activation threshold: spoof detection engages only
    when the offered load exceeds the protected server's capacity (§IV.C
    enables it at 14K req/s).
    """

    __slots__ = ("window", "_count", "_window_start", "_last_rate")

    def __init__(self, window: float = 0.1):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._count = 0
        self._window_start = 0.0
        self._last_rate = 0.0

    def observe(self, now: float) -> float:
        """Count one arrival; returns the current rate estimate."""
        if now - self._window_start >= self.window:
            self._last_rate = self._count / (now - self._window_start)
            self._window_start = now
            self._count = 0
        self._count += 1
        # take the in-progress window into account so ramp-ups are seen fast
        return max(self._last_rate, self._count / self.window)

    def rate_now(self, now: float) -> float:
        """Current estimate without counting an arrival."""
        if now - self._window_start >= self.window and self._count:
            self._last_rate = self._count / (now - self._window_start)
            self._window_start = now
            self._count = 0
        return max(self._last_rate, self._count / self.window)

    @property
    def rate(self) -> float:
        return self._last_rate
