"""The LRS-side guard's hold/stamp/probe decision logic (§III.D) — pure.

The local guard's adapter moves packets; what it *does* with an outbound
query is decided here from plain values:

* ``forward`` — the destination server has recently answered a probe
  without a grant, so no remote guard is filtering there;
* ``stamp`` — a fresh cached cookie exists: modify in place, zero extra
  round trips;
* ``hold-probe`` — hold the query and (re-)send a cookie probe: the
  queue was empty, the last probe has aged past the retry interval, or
  the guard runs in per-query (no-cache) mode;
* ``hold`` — hold behind an already-outstanding probe.
"""

from __future__ import annotations

import dataclasses

__layer__ = "pure-core"

#: How long a fetched cookie stays cached (the paper's one-week rotation).
DEFAULT_COOKIE_TTL = 7 * 24 * 3600.0

#: How long held queries wait for a cookie grant before being dropped.
PENDING_TIMEOUT = 2.0

#: How long the guard remembers that a server answered a cookie probe with a
#: plain response (i.e. no remote guard is filtering) before probing again.
UNCOOKIED_TTL = 5.0

#: Minimum spacing between cookie probes for the same (server, client) pair
#: while queries are held — a lost grant must not deadlock the queue.
PROBE_RETRY_INTERVAL = 0.1


@dataclasses.dataclass(slots=True)
class CachedCookie:
    """One learned cookie and when it stops being trustworthy."""

    cookie: bytes
    expires_at: float


def cookie_usable(entry: CachedCookie | None, now: float) -> bool:
    """Whether a cached cookie may still be stamped onto queries."""
    return entry is not None and entry.expires_at > now


def probe_due(last_probe: float, now: float) -> bool:
    """Whether the retry interval since the last probe has elapsed."""
    return now - last_probe >= PROBE_RETRY_INTERVAL


def outbound_action(
    *,
    uncookied_until: float,
    cached: CachedCookie | None,
    now: float,
    cache_cookies: bool,
    held_count: int,
    last_probe: float,
) -> str:
    """The decision for one outbound uncookied query.

    ``held_count`` counts the query being decided (i.e. the queue length
    *after* it would be held); ``last_probe`` is ``-inf``-like (any value
    older than the retry interval) when no probe was ever sent.
    """
    if uncookied_until > now:
        return "forward"
    if cache_cookies and cookie_usable(cached, now):
        return "stamp"
    if held_count == 1 or probe_due(last_probe, now) or not cache_cookies:
        return "hold-probe"
    return "hold"
