"""Admission policy and scheme escalation — the pure decision seam.

The Figure-4 pipeline's *decisions about whether work is admitted* live
here, away from the packets and the scheduler:

* :data:`Policy` — the per-source challenge vocabulary, with the §III.B
  escalation built in: the DNS-based scheme falls back to the TCP-based
  one when the original name cannot fit in a cookie label
  (:func:`fallback_policy`);
* :class:`AdmissionControl` + :func:`should_shed` — §IV.C priority-aware
  ingress shedding, closed by ``repro.control``;
* :func:`reap_deadline` — the TCP proxy's connection-lifetime bound
  (§III.C: reap at ``reap_rtt_multiple`` × RTT).

Everything is a function of its arguments: the adapters read clocks and
queues and pass the numbers in.
"""

from __future__ import annotations

import dataclasses
from typing import Literal

__layer__ = "pure-core"

#: Shared-state declaration for the race analyser
#: (``repro.analysis.races``): the control plane hot-tunes the admission
#: knobs from its boundary-lane sweep, so they are scheduler-visible
#: state wherever an adapter installs them.
__shared_state__ = {
    "AdmissionControl": {
        "guarded": ["engaged", "shed_backlog_fraction", "verified_ttl"],
    },
}

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``): honestly empty — the decision seam holds
#: no tables; the verified-source table lives with its pipeline adapter.
__state_bounds__ = {}

#: Per-source challenge policy: which scheme an unverified requester is
#: escalated into (or whether it is passed/dropped outright).
Policy = Literal["dns", "tcp", "forward", "drop"]

#: Connections older than this multiple of their RTT are reaped (§III.C).
REAP_RTT_MULTIPLE = 5.0

#: Floor for the reaping deadline.  SYN-cookie connections materialise at
#: the final ACK, so their measured handshake RTT is ~0 and the multiple
#: alone would reap them instantly; the floor also leaves room for CPU
#: queueing delays when thousands of connections are in flight (Fig 7a).
MIN_REAP_SECONDS = 1.0


@dataclasses.dataclass(slots=True)
class AdmissionControl:
    """Priority-aware ingress admission (§IV.C, closed by ``repro.control``).

    While ``engaged`` and the node CPU backlog exceeds
    ``shed_backlog_fraction`` of the queue limit, queries from sources
    without a *fresh verification* (a cookie/label/COOKIE2 success within
    ``verified_ttl`` seconds) are shed at bare per-packet cost before any
    DNS parsing.  Verified requesters keep flowing — the opposite of the
    FIFO queue dropping blindly when it saturates.
    """

    engaged: bool = False
    shed_backlog_fraction: float = 0.5
    verified_ttl: float = 5.0


def should_shed(
    control: AdmissionControl,
    *,
    backlog: float,
    queue_limit: float,
    last_verified: float | None,
    now: float,
) -> bool:
    """Whether an ingress packet from this source is shed right now.

    Pure over its inputs: the adapter reads the CPU backlog and the
    source's last-verification stamp and passes them in.  Shedding
    requires all three of: shedding engaged, backlog past the configured
    fraction of the queue limit, and no fresh verification.
    """
    if not control.engaged:
        return False
    if backlog < control.shed_backlog_fraction * queue_limit:
        return False
    return last_verified is None or last_verified + control.verified_ttl <= now


def fallback_policy(action: Policy) -> Policy:
    """The §III.B escalation: DNS-based challenges degrade to TCP.

    The DNS-based scheme embeds the original QNAME in the cookie label;
    when it does not fit, the guard escalates the requester into the
    TCP-based scheme instead.  Other policies stand as chosen.
    """
    return "tcp" if action == "dns" else action


def reap_deadline(
    rtt: float | None,
    multiple: float = REAP_RTT_MULTIPLE,
    floor: float = MIN_REAP_SECONDS,
) -> float:
    """Seconds a TCP-scheme connection may live before the reaper fires."""
    return max(multiple * (rtt or 0.0), floor)
