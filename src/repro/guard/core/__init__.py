"""The pure guard core: decision state machines with no transport below.

The paper's guard is explicitly a separable bump-in-the-wire module
(§III) — its cookie/TCP/modified-DNS decision logic is independent of
the transport it fronts.  This package is that claim made structural:
everything here is a function of its arguments plus the injected
:mod:`~repro.guard.core.ports` seams (Clock/Rng/Emit), with **no**
imports of the simulator (``repro.netsim``), the observability layer
(``repro.obs``), asyncio or sockets.

The layering analysis (``python -m repro.analysis --layers``) enforces
this permanently: L001/L002/L003 keep platform dependencies and purity
escapes out statically, and L006 re-imports this package at analysis
time with the platform layers *blocked* to prove there is no transitive
dependency either.  That guarantee is what unblocks ROADMAP item 4 (a
dual-target dataplane: the same core behind real sockets).

Modules:

* :mod:`.ports` — the Clock/Rng/Emit injection protocols;
* :mod:`.cookie` — cookie generate/verify + key rotation (§III.E);
* :mod:`.dns_scheme` — the NS-label cookie codec (§III.B);
* :mod:`.edns_cookie` — the RFC 7873 codec and cookie computations;
* :mod:`.ratelimit` — RL1/RL2 token buckets, space-saving tracker,
  rate estimation (Figure 4);
* :mod:`.admission` — admission shedding, policy escalation, reap
  deadlines (§III.C, §IV.C);
* :mod:`.local_policy` — the LRS-side hold/stamp/probe decisions
  (§III.D).

The simulator adapters (``repro.guard.pipeline`` and friends) import
down into this package; nothing here imports up.
"""

from __future__ import annotations

from .admission import (
    MIN_REAP_SECONDS,
    REAP_RTT_MULTIPLE,
    AdmissionControl,
    Policy,
    fallback_policy,
    reap_deadline,
    should_shed,
)
from .cookie import (
    KEY_LENGTH,
    LABEL_COOKIE_LENGTH,
    LABEL_HEX_DIGITS,
    LABEL_PREFIX,
    CookieFactory,
    random_key,
)
from .dns_scheme import (
    FABRICATED_NS_TTL,
    CookieName,
    cookie_name_answer,
    decode_cookie_name,
    delegation_owner,
    encode_cookie_name,
    fabricated_referral,
)
from .edns_cookie import (
    CLIENT_COOKIE_LENGTH,
    OPTION_COOKIE,
    SERVER_COOKIE_LENGTH,
    EdnsCookieServer,
    attach_edns_cookie,
    derive_client_cookie,
    extract_edns_cookie,
    strip_edns_cookie,
)
from .local_policy import (
    DEFAULT_COOKIE_TTL,
    PENDING_TIMEOUT,
    PROBE_RETRY_INTERVAL,
    UNCOOKIED_TTL,
    CachedCookie,
    cookie_usable,
    outbound_action,
    probe_due,
)
from .ports import NULL_EMIT, Clock, Emit, Rng
from .ratelimit import (
    RateEstimator,
    TokenBucket,
    TopRequesterTracker,
    UnverifiedResponseLimiter,
    VerifiedRequestLimiter,
)

__layer__ = "pure-core"

__all__ = [
    "AdmissionControl",
    "CachedCookie",
    "CLIENT_COOKIE_LENGTH",
    "Clock",
    "CookieFactory",
    "CookieName",
    "DEFAULT_COOKIE_TTL",
    "EdnsCookieServer",
    "Emit",
    "FABRICATED_NS_TTL",
    "KEY_LENGTH",
    "LABEL_COOKIE_LENGTH",
    "LABEL_HEX_DIGITS",
    "LABEL_PREFIX",
    "MIN_REAP_SECONDS",
    "NULL_EMIT",
    "OPTION_COOKIE",
    "PENDING_TIMEOUT",
    "PROBE_RETRY_INTERVAL",
    "Policy",
    "RateEstimator",
    "REAP_RTT_MULTIPLE",
    "Rng",
    "SERVER_COOKIE_LENGTH",
    "TokenBucket",
    "TopRequesterTracker",
    "UNCOOKIED_TTL",
    "UnverifiedResponseLimiter",
    "VerifiedRequestLimiter",
    "attach_edns_cookie",
    "cookie_name_answer",
    "cookie_usable",
    "decode_cookie_name",
    "delegation_owner",
    "derive_client_cookie",
    "encode_cookie_name",
    "extract_edns_cookie",
    "fabricated_referral",
    "fallback_policy",
    "outbound_action",
    "probe_due",
    "random_key",
    "reap_deadline",
    "should_shed",
    "strip_edns_cookie",
]
