"""The local DNS guard: the LRS-side half of the modified-DNS scheme (§III.D).

Deployed inline in front of an unmodified LRS, it makes the LRS
cookie-capable without touching its software:

* outbound DNS queries are held while the guard fetches the destination
  server's cookie (message 2: the same question with an all-zero cookie,
  sized identically to the grant so there is no amplification), then
  released with the cookie attached (message 4);
* once a cookie is cached (keyed by server *and* client address, since the
  cookie binds to the source IP), queries flow through with one in-place
  modification and zero extra round trips;
* inbound cookie grants are consumed; all other responses pass untouched.
"""

from __future__ import annotations

import copy
from ipaddress import IPv4Address

from ..dnswire import (
    Message,
    attach_cookie,
    extract_cookie,
    ZERO_COOKIE,
)
from ..netsim import BOUNDARY_PRIORITY, DnsPayload, Link, Node, Packet, UdpDatagram
from .core.local_policy import (
    DEFAULT_COOKIE_TTL,
    PENDING_TIMEOUT,
    PROBE_RETRY_INTERVAL,
    UNCOOKIED_TTL,
    CachedCookie as _CachedCookie,
    outbound_action,
)

__layer__ = "adapter"

#: Trust boundary for the flow analyser (``repro.analysis.flow``).  The
#: local guard makes no admission decisions — it stamps the resolver's
#: *own* outbound queries and consumes grants addressed to it — so it
#: declares taint sources but no sinks: nothing it emits grants an
#: attacker access to a protected resource.  A forged grant can at worst
#: plant a cookie the remote guard will reject (one wasted round trip).
__trust_boundary__ = {
    "scheme": "local-guard",
    "entry_points": [
        "LocalDnsGuard._transit",
        "LocalDnsGuard._outbound_query",
        "LocalDnsGuard._inbound_response",
    ],
    "taint_params": ["packet", "datagram", "message", "link"],
    "sinks": [],
    "assumes": (
        "outbound queries originate from the on-path LRS; inbound grants "
        "are verified end-to-end by the remote guard, not here (§III.D)"
    ),
}

#: Shared-state declaration for the race analyser
#: (``repro.analysis.races``).
__shared_state__ = {
    "LocalDnsGuard": {
        "guarded": ["_cookies", "_held", "_uncookied", "_last_probe", "_sweeper"],
        "commutative": [
            "cookies_cached",
            "queries_stamped",
            "queries_held",
            "held_dropped",
        ],
    },
}

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``).  Every key is a (server, client) pair
#: taken from the on-path LRS's *own* outbound queries — internal
#: provenance, not attacker-spoofable — and every table is drained by
#: the boundary-lane ``_sweep`` (plus protocol-driven removal when a
#: grant releases a held queue).
__state_bounds__ = {
    "LocalDnsGuard": {
        "_cookies": {"bound": 4096, "evicted_by": "sweep", "keyed_by": "internal"},
        "_held": {
            "bound": 4096,
            "evicted_by": "sweep+lifecycle",
            "keyed_by": "internal",
        },
        "_uncookied": {"bound": 4096, "evicted_by": "sweep", "keyed_by": "internal"},
        "_last_probe": {"bound": 4096, "evicted_by": "sweep", "keyed_by": "internal"},
    },
}

_CacheKey = tuple[IPv4Address, IPv4Address]  # (server, client)


class LocalDnsGuard:
    """Inline middlebox adding modified-DNS cookies for the LRS behind it."""

    def __init__(
        self,
        node: Node,
        *,
        cookie_ttl: float = DEFAULT_COOKIE_TTL,
        cache_cookies: bool = True,
    ):
        """``cache_cookies=False`` fetches a fresh cookie for every query —
        the worst-case ("cache miss") behaviour measured in Table III."""
        self.node = node
        self.cookie_ttl = cookie_ttl
        self.cache_cookies = cache_cookies
        self._cookies: dict[_CacheKey, _CachedCookie] = {}
        self._held: dict[_CacheKey, list[tuple[Packet, UdpDatagram, float]]] = {}
        #: servers observed answering probes without a cookie grant — no
        #: remote guard is present there, so queries pass through unchanged
        self._uncookied: dict[_CacheKey, float] = {}
        self._last_probe: dict[_CacheKey, float] = {}
        self.cookies_cached = 0
        self.queries_stamped = 0
        self.queries_held = 0
        self.held_dropped = 0
        node.transit_filter = self._transit
        # Boundary lane: expiry applies at the start of an instant, before
        # any packet delivery sharing the same timestamp.
        self._sweeper = node.sim.schedule(
            1.0, self._sweep, priority=BOUNDARY_PRIORITY
        )

    # -- transit hook -----------------------------------------------------------

    def _transit(self, packet: Packet, link: Link) -> str:
        segment = packet.segment
        if not isinstance(segment, UdpDatagram):
            return "forward"
        payload = segment.payload
        if not isinstance(payload, DnsPayload):
            return "forward"
        message = payload.message
        if segment.dport == 53 and message.is_query():
            return self._outbound_query(packet, segment, message)
        if segment.sport == 53 and message.is_response():
            return self._inbound_response(packet, segment, message)
        return "forward"

    # -- outbound ---------------------------------------------------------------

    def _outbound_query(
        self, packet: Packet, datagram: UdpDatagram, message: Message
    ) -> str:
        if extract_cookie(message) is not None:
            return "forward"  # already cookie-capable upstream of us
        now = self.node.sim.now
        key = (packet.dst, packet.src)
        queue = self._held.get(key, ())
        action = outbound_action(
            uncookied_until=self._uncookied.get(key, 0.0),
            cached=self._cookies.get(key),
            now=now,
            cache_cookies=self.cache_cookies,
            held_count=len(queue) + 1,
            last_probe=self._last_probe.get(key, -1.0),
        )
        if action == "forward":
            return "forward"  # that server has no remote guard
        if action == "stamp":
            self._send_with_cookie(packet, datagram, message, self._cookies[key].cookie)
            self.queries_stamped += 1
            return "drop"
        # no (usable) cookie: hold the query and ask for one.  Probes are
        # re-sent ("hold-probe") if the previous one (or its grant) was lost.
        self._held.setdefault(key, []).append((packet, datagram, now + PENDING_TIMEOUT))
        self.queries_held += 1
        if action == "hold-probe":
            self._last_probe[key] = now
            self._request_cookie(packet, datagram, message)
        return "drop"

    def _send_with_cookie(
        self, packet: Packet, datagram: UdpDatagram, message: Message, cookie: bytes
    ) -> None:
        stamped = copy.copy(message)
        stamped.additionals = list(message.additionals)
        attach_cookie(stamped, cookie)
        self.node.send(
            Packet(
                src=packet.src,
                dst=packet.dst,
                segment=UdpDatagram(datagram.sport, datagram.dport, DnsPayload(stamped)),
                span=packet.span,
            )
        )

    def _request_cookie(
        self, packet: Packet, datagram: UdpDatagram, message: Message
    ) -> None:
        """Message 2: the original question carrying an all-zero cookie."""
        probe = copy.copy(message)
        probe.additionals = list(message.additionals)
        attach_cookie(probe, ZERO_COOKIE)
        self.node.send(
            Packet(
                src=packet.src,
                dst=packet.dst,
                segment=UdpDatagram(datagram.sport, datagram.dport, DnsPayload(probe)),
                span=packet.span,
            )
        )

    # -- inbound ----------------------------------------------------------------

    def _inbound_response(
        self, packet: Packet, datagram: UdpDatagram, message: Message
    ) -> str:
        cookie = extract_cookie(message)
        if cookie is None or cookie == ZERO_COOKIE:
            self._note_plain_response(packet, message)
            return "forward"
        # a cookie grant (message 3): cache it and release held queries
        now = self.node.sim.now
        key = (packet.src, packet.dst)
        if self.cache_cookies:
            self._cookies[key] = _CachedCookie(cookie, now + self.cookie_ttl)
            self.cookies_cached += 1
            released = self._held.pop(key, [])
        else:
            # per-query cookies: release exactly the oldest held query
            queue = self._held.get(key, [])
            released = [queue.pop(0)] if queue else []
            if not queue:
                self._held.pop(key, None)
        for held_packet, held_datagram, deadline in released:
            if deadline > now:
                held_message = held_datagram.payload.message  # type: ignore[union-attr]
                self._send_with_cookie(held_packet, held_datagram, held_message, cookie)
                self.queries_stamped += 1
            else:
                self.held_dropped += 1
        return "drop"

    def _note_plain_response(self, packet: Packet, message: Message) -> None:
        """A cookie probe was answered *without* a grant: the server has no
        remote guard.  Remember that and release held queries unchanged."""
        key = (packet.src, packet.dst)
        queue = self._held.get(key)
        if not queue:
            return
        if not any(
            item[1].payload.message.header.msg_id == message.header.msg_id  # type: ignore[union-attr]
            for item in queue
        ):
            return
        now = self.node.sim.now
        self._uncookied[key] = now + UNCOOKIED_TTL
        for held_packet, held_datagram, deadline in self._held.pop(key):
            # the probe's answer already satisfies the matching query; only
            # re-send the others, unmodified
            held_message = held_datagram.payload.message  # type: ignore[union-attr]
            if held_message.header.msg_id == message.header.msg_id:
                continue
            if deadline > now:
                self.node.send(
                    Packet(
                        src=held_packet.src,
                        dst=held_packet.dst,
                        segment=held_datagram,
                        span=held_packet.span,
                    )
                )
            else:
                self.held_dropped += 1

    # -- maintenance --------------------------------------------------------------

    def _sweep(self) -> None:
        now = self.node.sim.now
        for key, queue in list(self._held.items()):
            live = [item for item in queue if item[2] > now]
            self.held_dropped += len(queue) - len(live)
            if live:
                self._held[key] = live
            else:
                del self._held[key]
                # the grant was lost: retry on the next query
        expired = [key for key, entry in self._cookies.items() if entry.expires_at <= now]
        for key in expired:
            del self._cookies[key]
        stale = [key for key, deadline in self._uncookied.items() if deadline <= now]
        for key in stale:
            del self._uncookied[key]
        # probe timestamps only matter while queries are held for the key;
        # once the queue is gone and the retry window has passed, a missing
        # entry and a stale one behave identically, so drop the entry
        stale_probes = [
            key
            for key, stamped in self._last_probe.items()
            if key not in self._held and now - stamped >= PENDING_TIMEOUT
        ]
        for key in stale_probes:
            del self._last_probe[key]
        self._sweeper = self.node.sim.schedule(
            1.0, self._sweep, priority=BOUNDARY_PRIORITY
        )

    def cached_cookie(self, server: IPv4Address, client: IPv4Address) -> bytes | None:
        entry = self._cookies.get((server, client))
        if entry is None or entry.expires_at <= self.node.sim.now:
            return None
        return entry.cookie

    def flush(self) -> None:
        self._cookies.clear()
