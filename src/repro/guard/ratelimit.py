"""Compatibility shim: the rate limiters live in the pure core.

Rate-limit accounting was already transport-free — every method takes
``now`` explicitly — so the whole module moved to
:mod:`repro.guard.core.ratelimit` in the guard-core extraction.  This
shim keeps the historical import path for the simulator-side code and
the tests; new code should import from :mod:`repro.guard.core`.
"""

from __future__ import annotations

from .core.ratelimit import (
    RateEstimator,
    TokenBucket,
    TopRequesterTracker,
    UnverifiedResponseLimiter,
    VerifiedRequestLimiter,
)

__layer__ = "adapter"

__all__ = [
    "RateEstimator",
    "TokenBucket",
    "TopRequesterTracker",
    "UnverifiedResponseLimiter",
    "VerifiedRequestLimiter",
]
