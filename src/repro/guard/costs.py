"""Per-operation CPU costs for the guard (the paper's P4 2.4 GHz machine).

These constants substitute for the testbed hardware (see DESIGN.md).  They
were calibrated so the guard reproduces the paper's measured capacities:

* modified-DNS / NS-name cache-hit service ≈ 5.2 µs (2 packets in + 2 out
  plus one MD5 and the response forward) → the guard stays below 70%
  utilisation while the 110K req/s ANS simulator saturates (Table III);
* invalid-cookie drop ≈ 2.15 µs → the guard absorbs ≈200K attack req/s
  before its own CPU saturates, and still delivers ≈80–90K legitimate
  req/s at 250K attack (Figure 6);
* cache-miss exchanges (6 packets + 2 cookies + 1 fabrication ≈ 10.3 µs;
  8 packets + 3 cookies + 2 fabrications ≈ 15 µs) → ≈90K and ≈65K req/s,
  matching Table III's 84.2K / 60.1K within the shape tolerance;
* a TCP-proxied request crosses ≈11 segments → ≈44 µs ≈ 22.7K req/s
  (Table III), with a per-open-connection scan cost that halves throughput
  near 6000 concurrent connections (Figure 7a).
"""

from __future__ import annotations

import dataclasses

__layer__ = "adapter"


@dataclasses.dataclass(frozen=True, slots=True)
class GuardCosts:
    """CPU-seconds charged by the guard per primitive operation."""

    #: Receiving or transmitting one UDP packet.
    per_packet: float = 1.0e-6
    #: One MD5 cookie computation or verification.
    cookie: float = 1.15e-6
    #: Building a fabricated response (NS referral, cookie grant, COOKIE2 A).
    fabricate: float = 2.4e-6
    #: Rewriting an ANS response in place (message 5 -> message 6).
    rewrite: float = 0.5e-6
    #: Extra cost per TCP segment handled by the kernel proxy.
    tcp_segment: float = 2.8e-6
    #: Per-open-connection scan cost added to every proxied segment.
    tcp_conn_scan: float = 6.7e-10

    # -- derived operation costs (one submission each covers rx + tx work) --

    @property
    def forward(self) -> float:
        """Transit-forwarding one packet (receive + retransmit)."""
        return 2 * self.per_packet

    @property
    def drop_invalid(self) -> float:
        """Receive + cookie check + drop — the attack-packet cost."""
        return self.per_packet + self.cookie

    @property
    def fabricate_response(self) -> float:
        """Receive query, compute cookie, fabricate and send a reply."""
        return 2 * self.per_packet + self.cookie + self.fabricate

    @property
    def truncate_response(self) -> float:
        """Receive query and send the TC=1 redirect (no cookie involved)."""
        return 2 * self.per_packet + self.fabricate

    @property
    def validate_and_forward(self) -> float:
        """Verify a cookie and pass the request through to the ANS."""
        return 2 * self.per_packet + self.cookie

    @property
    def transform_response(self) -> float:
        """Rewrite an ANS response into the fabricated namespace (msg 6/10)."""
        return 2 * self.per_packet + self.rewrite

    @property
    def serve_cached_answer(self) -> float:
        """Answer message 7 from the guard's short-lived answer cache."""
        return 2 * self.per_packet + self.cookie + self.rewrite

    def tcp_segment_cost(self, open_connections: int) -> float:
        """Cost of one proxied TCP segment given the connection-table size."""
        return self.per_packet + self.tcp_segment + self.tcp_conn_scan * open_connections
