"""The DNS guard: cookie-based spoof detection for DNS servers.

The package implements the paper's three schemes behind one inline
middlebox (:class:`RemoteDnsGuard`) plus the LRS-side
:class:`LocalDnsGuard` that makes unmodified resolvers cookie-capable.

The decision logic — cookie generate/verify, the NS-label codec, the
RFC 7873 computations, rate-limit accounting, admission policy and the
LRS hold/stamp/probe state machine — lives in the transport-free
:mod:`repro.guard.core` subpackage; the modules here are the simulator
adapters around it.  The layering analysis
(``python -m repro.analysis --layers``) enforces the split.
"""

from . import core
from .cookie import (
    CookieFactory,
    KEY_LENGTH,
    LABEL_COOKIE_LENGTH,
    LABEL_PREFIX,
    random_key,
)
from .costs import GuardCosts
from .dns_scheme import (
    FABRICATED_NS_TTL,
    CookieName,
    cookie_name_answer,
    decode_cookie_name,
    delegation_owner,
    encode_cookie_name,
    fabricated_referral,
)
from .local_guard import DEFAULT_COOKIE_TTL, LocalDnsGuard
from .pipeline import AdmissionControl, RemoteDnsGuard
from .rfc7873 import (
    EdnsCookieClientShim,
    EdnsCookieGuard,
    EdnsCookieServer,
    attach_edns_cookie,
    extract_edns_cookie,
    strip_edns_cookie,
)
from .ratelimit import (
    RateEstimator,
    TokenBucket,
    TopRequesterTracker,
    UnverifiedResponseLimiter,
    VerifiedRequestLimiter,
)
from .tcp_scheme import TcpProxy

__layer__ = "adapter"

__all__ = [
    "AdmissionControl",
    "core",
    "CookieFactory",
    "CookieName",
    "DEFAULT_COOKIE_TTL",
    "EdnsCookieClientShim",
    "EdnsCookieGuard",
    "EdnsCookieServer",
    "FABRICATED_NS_TTL",
    "GuardCosts",
    "KEY_LENGTH",
    "LABEL_COOKIE_LENGTH",
    "LABEL_PREFIX",
    "LocalDnsGuard",
    "RateEstimator",
    "RemoteDnsGuard",
    "TcpProxy",
    "TokenBucket",
    "TopRequesterTracker",
    "UnverifiedResponseLimiter",
    "VerifiedRequestLimiter",
    "attach_edns_cookie",
    "cookie_name_answer",
    "extract_edns_cookie",
    "strip_edns_cookie",
    "decode_cookie_name",
    "delegation_owner",
    "encode_cookie_name",
    "fabricated_referral",
    "random_key",
]
