"""Compatibility shim: the NS-label cookie codec lives in the pure core.

Message fabrication for the DNS-based scheme (§III.B) is a pure
function of the query and the zone origin, so the whole module moved to
:mod:`repro.guard.core.dns_scheme` in the guard-core extraction.  This
shim keeps the historical import path; new code should import from
:mod:`repro.guard.core`.
"""

from __future__ import annotations

from .core.dns_scheme import (
    FABRICATED_NS_TTL,
    CookieName,
    cookie_name_answer,
    decode_cookie_name,
    delegation_owner,
    encode_cookie_name,
    fabricated_referral,
)

__layer__ = "adapter"

__all__ = [
    "FABRICATED_NS_TTL",
    "CookieName",
    "cookie_name_answer",
    "decode_cookie_name",
    "delegation_owner",
    "encode_cookie_name",
    "fabricated_referral",
]
