"""RFC 7873 DNS Cookies — the standardised descendant of this paper's idea.

The paper's modified-DNS scheme (2006) became, a decade later, RFC 7873:
an EDNS(0) COOKIE option carrying a *client cookie* (8 bytes, chosen by the
client) and a *server cookie* (8-32 bytes, a keyed hash binding the client
cookie to the client's address).  This module implements that protocol on
the same testbed so the two designs can be compared head-to-head
(``benchmarks/bench_ablation.py``):

* :class:`EdnsCookieGuard` — an inline middlebox enforcing cookies in front
  of an ANS, mirroring :class:`~repro.guard.RemoteDnsGuard`'s deployment;
* :class:`EdnsCookieClientShim` — an LRS-side middlebox that makes an
  unmodified resolver cookie-capable, mirroring
  :class:`~repro.guard.LocalDnsGuard`.

We run the guard in the RFC's hard-enforcement posture (§5.2.3's
alternative for servers under attack): a query carrying only a client
cookie earns an answerless response with the correct server cookie, and
the client retries — the same 2-round-trip first contact as the paper's
modified-DNS scheme, but with the cookie bound to the *client's* cookie as
well as its address.

The protocol itself — the OPT-RR option codec, the stateless
server-cookie computation and the client-cookie derivation — lives in
the pure core (:mod:`repro.guard.core.edns_cookie`); this module is the
simulator adapter moving packets around it, and re-exports the core
names for compatibility.
"""

from __future__ import annotations

import copy
import dataclasses
import struct
from ipaddress import IPv4Address

from ..dnswire import Message
from ..netsim import DnsPayload, Link, Node, Packet, RoutingError, UdpDatagram
from .core.edns_cookie import (
    CLIENT_COOKIE_LENGTH,
    OPTION_COOKIE,
    SERVER_COOKIE_LENGTH,
    EdnsCookieServer,
    attach_edns_cookie,
    derive_client_cookie,
    extract_edns_cookie,
    strip_edns_cookie,
)
from .costs import GuardCosts
from .ratelimit import UnverifiedResponseLimiter

__layer__ = "adapter"

#: Trust boundary for the flow analyser (``repro.analysis.flow``).
__trust_boundary__ = {
    "scheme": "rfc7873",
    "entry_points": [
        "EdnsCookieGuard._transit",
        "EdnsCookieClientShim._transit",
    ],
    "taint_params": ["packet", "datagram", "message", "link"],
    "sanitizers": ["server.verify"],
    "sinks": ["_forward"],
    "assumes": (
        "server-cookie grants and the no-cookie policy pass-through are "
        "the RFC's deliberate unverified paths; both are justified inline"
    ),
}

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``).  The server side is stateless by design
#: (RFC 7873 §6 recomputes the cookie per query); only the client shim
#: caches learned server cookies and holds queries awaiting a grant, and
#: a spoofed response can address both tables, so each is hard-capped —
#: the shim schedules nothing, so a sweep is not an option here.
__state_bounds__ = {
    "EdnsCookieClientShim": {
        "_server_cookies": {
            "bound": 4096,
            "evicted_by": "cap",
            "keyed_by": "attacker",
        },
        "_held": {
            "bound": 1024,
            "evicted_by": "cap+lifecycle",
            "keyed_by": "attacker",
        },
    },
}

#: Caps for the client shim's tables: learned server cookies, held-query
#: keys, and held queries per key.  Oldest-first displacement; a
#: displaced cookie costs one extra grant round trip, a displaced held
#: query would have lapsed at its 2 s deadline anyway.
SHIM_COOKIE_CAP = 4096
SHIM_HELD_KEYS_CAP = 1024
SHIM_HELD_PER_KEY_CAP = 16

class EdnsCookieGuard:
    """Inline RFC 7873 enforcement in front of an ANS.

    Policy, per RFC 7873 §5.2: a query with a valid server cookie passes; a
    query with only a client cookie gets the correct server cookie back in
    an answerless response (rate-limited — it is still unverified); a query
    with no cookie at all is handled per ``no_cookie_policy`` ("forward"
    preserves compatibility, "drop" is the hard-enforcement mode used when
    under attack).
    """

    def __init__(
        self,
        node: Node,
        ans_address: IPv4Address,
        *,
        server: EdnsCookieServer | None = None,
        costs: GuardCosts | None = None,
        rl1: UnverifiedResponseLimiter | None = None,
        no_cookie_policy: str = "drop",
    ):
        self.node = node
        self.ans_address = ans_address
        self.server = server if server is not None else EdnsCookieServer()
        self.costs = costs if costs is not None else GuardCosts()
        self.rl1 = rl1 if rl1 is not None else UnverifiedResponseLimiter(
            per_source_rate=1e9, per_source_burst=1e9
        )
        self.no_cookie_policy = no_cookie_policy
        self.valid_cookies = 0
        self.cookies_granted = 0
        self.invalid_drops = 0
        self.no_cookie_drops = 0
        node.transit_filter = self._transit
        node.forward_cost = self.costs.forward

    def _transit(self, packet: Packet, link: Link) -> str:
        segment = packet.segment
        if not isinstance(segment, UdpDatagram):
            return "forward"
        if packet.src == self.ans_address:
            return "forward"
        if packet.dst != self.ans_address or segment.dport != 53:
            return "forward"
        payload = segment.payload
        if not isinstance(payload, DnsPayload) or not payload.message.is_query():
            self._charge(self.costs.drop_invalid)
            return "drop"
        message = payload.message
        cookie = extract_edns_cookie(message)
        if cookie is None:
            if self.no_cookie_policy == "forward":
                # operator chose soft enforcement for legacy clients —
                # an explicit policy knob, not a verification bypass
                self._submit(self.costs.forward, self._forward, packet)  # repro: allow[T001] no_cookie_policy="forward" is an explicit operator decision
            else:
                self.no_cookie_drops += 1
                self._charge(self.costs.drop_invalid)
            return "drop"
        client_cookie, server_cookie = cookie
        if server_cookie and self.server.verify(client_cookie, server_cookie, packet.src):
            self.valid_cookies += 1
            clean = copy.copy(message)
            clean.additionals = list(message.additionals)
            strip_edns_cookie(clean)
            forwarded = Packet(
                src=packet.src,
                dst=packet.dst,
                segment=UdpDatagram(segment.sport, 53, DnsPayload(clean)),
            )
            self._submit(self.costs.validate_and_forward, self._forward, forwarded)
            return "drop"
        if server_cookie:
            # wrong server cookie: could be stale or forged — drop (the
            # client will retry and learn the fresh cookie)
            self.invalid_drops += 1
            self._charge(self.costs.drop_invalid)
            return "drop"
        # client cookie only: grant the server cookie (unverified response)
        if not self.rl1.allow(packet.src, self.node.sim.now):
            self._charge(self.costs.per_packet)
            return "drop"
        grant = Message(questions=list(message.questions))
        grant.header.msg_id = message.header.msg_id
        grant.header.qr = True
        attach_edns_cookie(
            grant, client_cookie, self.server.server_cookie(client_cookie, packet.src)
        )
        self.cookies_granted += 1
        reply = Packet(
            src=packet.dst,
            dst=packet.src,
            segment=UdpDatagram(53, segment.sport, DnsPayload(grant)),
        )
        # the grant is a bounded, rate-limited reply to the *claimed*
        # source (RFC 7873 §5.2.3) — a challenge, not an admission
        self._submit(self.costs.fabricate_response, self._forward, reply)  # repro: allow[T001] cookie grant returns to the claimed source under RL1
        return "drop"

    def _forward(self, packet: Packet) -> None:
        try:
            self.node.send(packet)
        except RoutingError:
            pass

    def _submit(self, cost: float, fn, *args) -> None:
        self.node.cpu.submit(cost, fn, *args)

    def _charge(self, cost: float) -> None:
        self.node.cpu.charge(cost)


@dataclasses.dataclass(slots=True)
class _ServerCookieEntry:
    server_cookie: bytes
    expires_at: float


class EdnsCookieClientShim:
    """LRS-side middlebox stamping RFC 7873 cookies onto plain queries.

    The client cookie is derived per (client, server) pair as the RFC
    recommends; the learned server cookie is cached and refreshed whenever
    a grant (answerless cookie response) comes back.
    """

    def __init__(self, node: Node, *, cookie_ttl: float = 3600.0):
        self.node = node
        self.cookie_ttl = cookie_ttl
        self._secret = struct.pack("!Q", node.sim.rng.getrandbits(64))
        self._server_cookies: dict[tuple[IPv4Address, IPv4Address], _ServerCookieEntry] = {}
        self._held: dict[tuple[IPv4Address, IPv4Address], list[tuple[Packet, UdpDatagram, float]]] = {}
        self.queries_stamped = 0
        self.grants_learned = 0
        node.transit_filter = self._transit

    def client_cookie(self, client: IPv4Address, server: IPv4Address) -> bytes:
        return derive_client_cookie(self._secret, client, server)

    def _transit(self, packet: Packet, link: Link) -> str:
        segment = packet.segment
        if not isinstance(segment, UdpDatagram):
            return "forward"
        payload = segment.payload
        if not isinstance(payload, DnsPayload):
            return "forward"
        message = payload.message
        if segment.dport == 53 and message.is_query():
            return self._outbound(packet, segment, message)
        if segment.sport == 53 and message.is_response():
            return self._inbound(packet, segment, message)
        return "forward"

    def _outbound(self, packet: Packet, datagram: UdpDatagram, message: Message) -> str:
        now = self.node.sim.now
        key = (packet.dst, packet.src)
        client_cookie = self.client_cookie(packet.src, packet.dst)
        entry = self._server_cookies.get(key)
        server_cookie = b""
        if entry is not None and entry.expires_at > now:
            server_cookie = entry.server_cookie
        else:
            # remember the original so a grant can release it (capped:
            # oldest key out when full, oldest query out within a key)
            if key not in self._held and len(self._held) >= SHIM_HELD_KEYS_CAP:
                del self._held[next(iter(self._held))]
            queue = self._held.setdefault(key, [])
            if len(queue) >= SHIM_HELD_PER_KEY_CAP:
                queue.pop(0)
            queue.append((packet, datagram, now + 2.0))
        stamped = copy.copy(message)
        stamped.additionals = list(message.additionals)
        attach_edns_cookie(stamped, client_cookie, server_cookie)
        self.queries_stamped += 1
        self.node.send(
            Packet(
                src=packet.src,
                dst=packet.dst,
                segment=UdpDatagram(datagram.sport, datagram.dport, DnsPayload(stamped)),
            )
        )
        return "drop"

    def _inbound(self, packet: Packet, datagram: UdpDatagram, message: Message) -> str:
        cookie = extract_edns_cookie(message)
        if cookie is None:
            return "forward"
        client_cookie, server_cookie = cookie
        if not server_cookie:
            return "forward"
        now = self.node.sim.now
        key = (packet.src, packet.dst)
        if key not in self._server_cookies and len(self._server_cookies) >= SHIM_COOKIE_CAP:
            del self._server_cookies[next(iter(self._server_cookies))]
        self._server_cookies[key] = _ServerCookieEntry(server_cookie, now + self.cookie_ttl)
        self.grants_learned += 1
        if message.answers:
            # a real answer that happens to carry the cookie: pass it on
            return "forward"
        # an answerless grant: re-send held queries with the fresh cookie
        for held_packet, held_datagram, deadline in self._held.pop(key, []):
            if deadline <= now:
                continue
            held_message = held_datagram.payload.message  # type: ignore[union-attr]
            stamped = copy.copy(held_message)
            stamped.additionals = list(held_message.additionals)
            attach_edns_cookie(stamped, client_cookie, server_cookie)
            self.node.send(
                Packet(
                    src=held_packet.src,
                    dst=held_packet.dst,
                    segment=UdpDatagram(
                        held_datagram.sport, held_datagram.dport, DnsPayload(stamped)
                    ),
                )
            )
        return "drop"
