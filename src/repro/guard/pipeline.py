"""The remote DNS guard: the Figure-4 pipeline as an inline middlebox.

The guard is a bump-in-the-wire router between the Internet and the
protected ANS.  Every packet crossing it goes through ``_transit``:

* **plain UDP queries** (no cookie anywhere) get an *unverified* response —
  a fabricated cookie referral (DNS-based scheme) or a TC=1 redirect
  (TCP-based scheme), chosen by the per-source ``policy`` — rate-limited by
  Rate-Limiter1 so the ANS cannot amplify traffic toward spoofed victims;
* **cookie-bearing queries** (modified-DNS TXT extension, cookie-label
  QNAMEs, or queries to fabricated COOKIE2 addresses) are verified with one
  MD5; failures are dropped on the floor, successes pass Rate-Limiter2 and
  reach the ANS;
* **TCP** to the ANS is terminated by the transparent proxy
  (:mod:`.tcp_scheme`);
* **ANS responses** flow back through the guard, which rewrites the ones
  belonging to fabricated-namespace exchanges (message 5 → message 6,
  message 9 → message 10) and forwards the rest untouched.

All three schemes run simultaneously; requesters self-select by what their
queries carry.  Spoof detection engages only above ``activation_threshold``
requests/sec (None = always on), matching §IV.C's advice to enable checking
only when the offered load exceeds the ANS's capacity.
"""

from __future__ import annotations

import copy
import dataclasses
from ipaddress import IPv4Address, IPv4Network
from typing import Callable

from ..dnswire import (
    Message,
    Name,
    ResourceRecord,
    attach_cookie,
    extract_cookie,
    make_query,
    make_response,
    make_truncated_response,
    strip_cookie,
    RRType,
    ZERO_COOKIE,
)
from ..netsim import (
    BOUNDARY_PRIORITY,
    DnsPayload,
    Link,
    Node,
    Packet,
    RoutingError,
    UdpDatagram,
)
from .cookie import CookieFactory, random_key
from .core.admission import (
    AdmissionControl,
    Policy,
    fallback_policy,
    should_shed,
)
from .core.dns_scheme import (
    FABRICATED_NS_TTL,
    cookie_name_answer,
    decode_cookie_name,
    fabricated_referral,
)
from .core.ratelimit import (
    RateEstimator,
    UnverifiedResponseLimiter,
    VerifiedRequestLimiter,
)
from .costs import GuardCosts
from .tcp_scheme import TcpProxy

__layer__ = "adapter"

#: Trust boundary for the flow analyser (``repro.analysis.flow``): every
#: packet field entering through these handlers is attacker-controlled
#: until it flows through one of the registered verifiers.  Read
#: statically — never imported.
__trust_boundary__ = {
    "scheme": "remote-guard",
    "entry_points": [
        "RemoteDnsGuard._transit",
        "RemoteDnsGuard._transit_udp",
        "RemoteDnsGuard._handle_ans_query",
        "RemoteDnsGuard._grant_cookie",
        "RemoteDnsGuard._handle_cookie2_query",
        "RemoteDnsGuard._handle_ans_response",
    ],
    "taint_params": ["packet", "datagram", "message", "link"],
    "sanitizers": [
        # the paper's verifiers: one MD5 per check (§IV.B)
        "cookies.verify",
        "cookies.verify_label",
        "cookies.verify_ip_cookie",
        # per-source policy is an explicit operator trust decision
        "policy_for",
        # popping a pending entry proves the response matches soft state
        # the guard itself created for a verified exchange
        "_pending.pop",
    ],
    "sinks": ["_strip_and_forward", "_restore_and_forward", "_safe_send"],
    "assumes": (
        "the ANS address is configuration, not input; fabricated replies "
        "(_send_udp) return to the claimed source and are rate-limited, "
        "so they are challenges, not admissions"
    ),
}

#: Shared-state declaration for the race analyser
#: (``repro.analysis.races``): the cells same-instant handlers may
#: collide on.  Guarded cells are order-sensitive (soft-state tables,
#: mode flags, timer handles); commutative cells are monotone counters.
__shared_state__ = {
    "RemoteDnsGuard": {
        "guarded": [
            "_pending",
            "_answer_cache",
            "down",
            "cookies",
            "estimator",
            "_sweeper",
            # control-plane actuator targets (PR 7): the controller's
            # boundary-lane sweep mutates these, so they are
            # scheduler-visible state like any other soft-state cell
            "_policy",
            "admission",
            "_verified_sources",
        ],
        "commutative": [
            "crashes",
            "queries_seen",
            "cookies_granted",
            "referrals_fabricated",
            "truncations_sent",
            "valid_cookies",
            "invalid_drops",
            "rl1_drops",
            "rl2_drops",
            "overload_drops",
            "responses_transformed",
            "forwarded_inactive",
            "unroutable_replies",
            "admission_shed",
            "watched_rejects",
            "_decision_counters",
        ],
    },
}

#: State-bound declaration for the memory analyser
#: (``repro.analysis.memory``).  The guard's soft state is the paper's
#: §III design: every table an attacker can address is expiry-swept by
#: the boundary-lane ``_sweep`` *and* hard-capped at its insert sites,
#: so a spoofed flood can displace entries but never grow memory.
__state_bounds__ = {
    "RemoteDnsGuard": {
        "_pending": {
            "bound": 4096,
            "evicted_by": "sweep+cap",
            "keyed_by": "attacker",
        },
        "_answer_cache": {
            "bound": 4096,
            "evicted_by": "sweep+cap",
            "keyed_by": "attacker",
        },
        "_verified_sources": {
            "bound": 8192,
            "evicted_by": "cap",
            "keyed_by": "attacker",
        },
        "_decision_counters": {
            "bound": 64,
            "evicted_by": "lifecycle",
            "keyed_by": "config",
        },
    },
}

#: Hard cap on in-flight exchange state (``_pending``).  The sweep
#: expires entries every second; the cap bounds what a burst can insert
#: *within* a sweep window.  Oldest-first displacement costs the victim
#: one retry, which is the paper's trade: bounded memory, never an
#: unbounded table.
PENDING_CAP = 4096


@dataclasses.dataclass(slots=True)
class _Pending:
    """State for one in-flight exchange awaiting the ANS's response."""

    kind: str  # "cookie-name" | "dnat"
    cookie_qname: Name | None
    rewrite_source: IPv4Address | None
    original_qname: Name
    qtype: int
    expires_at: float


@dataclasses.dataclass(slots=True)
class _CachedAnswer:
    records: list[ResourceRecord]
    expires_at: float


class RemoteDnsGuard:
    """The DNS guard deployed in front of an authoritative name server."""

    def __init__(
        self,
        node: Node,
        ans_address: IPv4Address,
        *,
        origin: Name | str = ".",
        cookie_factory: CookieFactory | None = None,
        costs: GuardCosts | None = None,
        cookie_subnet: IPv4Network | str | None = None,
        policy: Policy | Callable[[IPv4Address], Policy] = "dns",
        activation_threshold: float | None = None,
        enabled: bool = True,
        rl1: UnverifiedResponseLimiter | None = None,
        rl2: VerifiedRequestLimiter | None = None,
        ns_ttl: int = FABRICATED_NS_TTL,
        pending_timeout: float = 2.0,
        answer_cache_ttl: float = 0.1,
        enable_tcp_proxy: bool = True,
    ):
        self.node = node
        self.ans_address = ans_address
        self.origin = Name.from_text(origin) if isinstance(origin, str) else origin
        # default key material comes from the simulation's seeded RNG so a
        # run (cookie values, fabricated addresses and all) replays exactly
        self.cookies = (
            cookie_factory
            if cookie_factory is not None
            else CookieFactory(random_key(node.sim.rng))
        )
        self.costs = costs if costs is not None else GuardCosts()
        self.cookie_subnet = (
            IPv4Network(cookie_subnet) if isinstance(cookie_subnet, str) else cookie_subnet
        )
        self._policy = policy
        self.activation_threshold = activation_threshold
        self.enabled = enabled
        self.rl1 = rl1 if rl1 is not None else UnverifiedResponseLimiter()
        self.rl2 = rl2 if rl2 is not None else VerifiedRequestLimiter()
        self.ns_ttl = ns_ttl
        self.pending_timeout = pending_timeout
        self.answer_cache_ttl = answer_cache_ttl
        self.estimator = RateEstimator()
        self._pending: dict[tuple[IPv4Address, int, int], _Pending] = {}
        self._answer_cache: dict[tuple[Name, int], _CachedAnswer] = {}
        #: Optional priority-aware ingress admission, installed by the
        #: control plane via :meth:`set_admission`.  ``None`` means the
        #: guard behaves exactly as before the control plane existed.
        self.admission: AdmissionControl | None = None
        #: ``source -> last verify-success time`` — only maintained while
        #: an admission policy is installed, bounded FIFO.
        self._verified_sources: dict[IPv4Address, float] = {}
        #: Experiment-configured ground truth: sources known legitimate,
        #: so any denial of service to them is a measured false reject.
        #: Populated before the run starts and read-only afterwards.
        self.watch_sources: frozenset[IPv4Address] = frozenset()
        #: True while the guard process is crashed: the box is dead inline
        #: hardware, so *nothing* crosses it (unlike ``enabled=False``,
        #: which degrades it to a plain router).
        self.down = False
        # counters
        self.crashes = 0
        self.queries_seen = 0
        self.cookies_granted = 0
        self.referrals_fabricated = 0
        self.truncations_sent = 0
        self.valid_cookies = 0
        self.invalid_drops = 0
        self.rl1_drops = 0
        self.rl2_drops = 0
        self.overload_drops = 0
        self.responses_transformed = 0
        self.forwarded_inactive = 0
        self.unroutable_replies = 0
        self.admission_shed = 0
        self.watched_rejects = 0

        # observability: pull-based stats snapshot plus per-decision
        # counters/spans via _note(); everything gates on a single None
        # check so a guard without obs pays nothing
        self._obs = node.sim.obs
        self._decision_counters: dict[tuple[str, str], object] = {}
        if self._obs is not None:
            self._obs.add_snapshot(f"guard.{node.name}", self.stats)

        node.transit_filter = self._transit
        node.forward_cost = self.costs.forward
        self.tcp_proxy = TcpProxy(self) if enable_tcp_proxy else None
        # Boundary lane: expiry applies at the start of an instant, before
        # any packet delivery sharing the same timestamp.
        self._sweeper = node.sim.schedule(
            1.0, self._sweep, priority=BOUNDARY_PRIORITY
        )

    # -- observability ----------------------------------------------------------------

    def _note(self, scheme: str, outcome: str, parent=None) -> None:
        """Record one guard decision: a labelled counter, plus a point span
        parented onto the requester's span when the packet carries one.

        Observe-only — never schedules, never draws randomness — so the
        event stream is identical whether or not obs is installed.
        """
        obs = self._obs
        if obs is None:
            return
        key = (scheme, outcome)
        counter = self._decision_counters.get(key)
        if counter is None:
            counter = self._decision_counters[key] = obs.counter(
                "guard.decisions", interval=0.1, scheme=scheme, outcome=outcome
            )
        counter.inc()  # type: ignore[attr-defined]
        if parent is not None:
            obs.spans.point(
                "guard.decision", parent=parent, scheme=scheme, outcome=outcome
            )

    # -- policy & activation ---------------------------------------------------------

    def policy_for(self, source: IPv4Address) -> Policy:
        if callable(self._policy):
            return self._policy(source)
        return self._policy

    # -- control-plane actuator seam ---------------------------------------------------
    #
    # The sanctioned mutating entry points for ``repro.control``: analysis
    # rule W002 forbids calling these from ``repro/obs/`` code, so the
    # observe-only contract survives the control plane's existence.

    def set_policy(self, policy: Policy | Callable[[IPv4Address], Policy]) -> None:
        """Hot-switch the challenge scheme for unverified plain queries."""
        self._policy = policy

    def set_admission(self, control: AdmissionControl | None) -> None:
        """Install (or remove, with ``None``) ingress admission control."""
        self.admission = control
        if control is None:
            self._verified_sources.clear()

    def rotate_cookie_key(self, key: bytes) -> None:
        """Install a fresh cookie key on top of the current generation.

        The generation-parity scheme tolerates exactly one outstanding
        previous generation, so callers must budget rotations; the key is
        supplied by the caller (the controller draws from
        ``child_rng("control")``) so rotation never perturbs the core
        event stream's randomness.
        """
        self.cookies.rotate(key)

    def _mark_verified(self, source: IPv4Address) -> None:
        """Remember a verify success for admission priority (bounded FIFO)."""
        if self.admission is None:
            return
        self._verified_sources[source] = self.node.sim.now
        if len(self._verified_sources) > 8192:
            del self._verified_sources[next(iter(self._verified_sources))]

    def _watched_reject(self, source: IPv4Address) -> None:
        if source in self.watch_sources:
            self.watched_rejects += 1

    def is_active(self, now: float) -> bool:
        """Whether spoof detection is currently engaged."""
        if not self.enabled:
            return False
        if self.activation_threshold is None:
            return True
        return self.estimator.rate_now(now) > self.activation_threshold

    @property
    def cookie_host_range(self) -> int:
        """R_y: usable host addresses in the fabricated-IP subnet."""
        if self.cookie_subnet is None:
            return 0
        return max(self.cookie_subnet.num_addresses - 2, 0)

    def cookie2_address(self, source: IPv4Address) -> IPv4Address | None:
        """The fabricated COOKIE2 address for ``source``."""
        r_y = self.cookie_host_range
        if r_y <= 0:
            return None
        y = self.cookies.ip_cookie(source, r_y)
        return IPv4Address(int(self.cookie_subnet.network_address) + 1 + y)

    # -- crash / restart --------------------------------------------------------------

    def crash(self) -> bytes:
        """Kill the guard process mid-flight, losing all soft state.

        Pending exchanges, the fabricated-namespace answer cache, limiter
        fill levels, rate estimates and every proxied TCP connection vanish
        — exactly what a real crash loses.  The cookie key material is the
        one thing a deployment persists (it must survive restarts or every
        outstanding cookie in the field dies with the process); the
        returned blob is that persisted state, to be handed back to
        :meth:`restart`.  Until then the node is dead inline hardware:
        every transit packet is dropped.
        """
        state = self.cookies.export_state()
        self.crashes += 1
        self.down = True
        self._pending.clear()
        self._answer_cache.clear()
        self._verified_sources.clear()
        self.rl1.reset()
        self.rl2.reset()
        self.estimator = RateEstimator(self.estimator.window)
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None
        if self.tcp_proxy is not None:
            # in-flight proxied connections die silently — a crashed box
            # sends no RSTs; clients discover via their own retransmit
            # budgets.  (SYN-cookie state is stateless by construction.)
            self.node.tcp.reset_all(send_rst=False)
        return state

    def restart(self, state: bytes | None = None, *, rotate_key: bool = False) -> None:
        """Bring a crashed guard back, optionally rotating the cookie key.

        ``state`` is the blob :meth:`crash` returned (None keeps the live
        factory, for tests that never crashed).  With ``rotate_key=True``
        a fresh key is installed *on top of* the persisted generations, so
        cookies issued before the crash verify under the previous key via
        the generation bit — legitimate clients must see zero false
        rejects across a restart-plus-rotation.
        """
        if state is not None:
            self.cookies = CookieFactory.import_state(
                state, label_hex_digits=self.cookies.label_hex_digits
            )
        if rotate_key:
            self.cookies.rotate(random_key(self.node.sim.rng))
        self.down = False
        if self._sweeper is None:
            self._sweeper = self.node.sim.schedule(
            1.0, self._sweep, priority=BOUNDARY_PRIORITY
        )

    # -- transit hook ---------------------------------------------------------------

    def _transit(self, packet: Packet, link: Link) -> str:
        if self.down:
            return "drop"
        segment = packet.segment
        if isinstance(segment, UdpDatagram):
            return self._transit_udp(packet, segment)
        # TCP: terminate connections aimed at the protected ANS when active
        if packet.dst == self.ans_address and segment.dport == 53:
            if self.tcp_proxy is not None and self.enabled:
                return "deliver"
            return "forward"
        if packet.src == self.ans_address:
            return "forward"
        # TCP already terminated here continues to arrive addressed to the
        # ANS; anything else is unrelated transit
        return "forward"

    def _transit_udp(self, packet: Packet, datagram: UdpDatagram) -> str:
        if not self.enabled:
            # hard-disabled (the paper's "protection disabled" baseline):
            # the guard is nothing but a router
            return "forward"
        # responses coming back from the ANS
        if packet.src == self.ans_address and datagram.sport == 53:
            return self._handle_ans_response(packet, datagram)
        # queries toward the protected server or the fabricated subnet
        to_ans = packet.dst == self.ans_address and datagram.dport == 53
        to_cookie_subnet = (
            self.cookie_subnet is not None
            and packet.dst in self.cookie_subnet
            and datagram.dport == 53
        )
        if not (to_ans or to_cookie_subnet):
            return "forward"
        now = self.node.sim.now
        self.queries_seen += 1
        self.estimator.observe(now)
        active = self.is_active(now)
        # priority-aware admission: when the control plane has engaged
        # shedding and the CPU backlog is past the configured fraction of
        # the queue limit, unverified sources are shed *here* — before any
        # payload parsing — at bare per-packet cost, so verified traffic
        # keeps its CPU headroom instead of the FIFO dropping blindly
        adm = self.admission
        if adm is not None:
            cpu = self.node.cpu
            if should_shed(
                adm,
                backlog=cpu.backlog,
                queue_limit=cpu.queue_limit,
                last_verified=self._verified_sources.get(packet.src),
                now=now,
            ):
                self.admission_shed += 1
                self._watched_reject(packet.src)
                self._charge(self.costs.per_packet)
                self._note("admission", "shed", packet.span)
                return "drop"
        payload = datagram.payload
        if not isinstance(payload, DnsPayload):
            # not parseable as DNS at all
            if active:
                self._charge(self.costs.drop_invalid)
                self.invalid_drops += 1
                return "drop"
            self.forwarded_inactive += 1
            return "forward"
        message = payload.message
        if not message.is_query() or not message.questions:
            if active:
                self._charge(self.costs.drop_invalid)
                self.invalid_drops += 1
                return "drop"
            self.forwarded_inactive += 1
            return "forward"
        # the guard's fabricated namespace (cookie grants, cookie-name
        # queries, COOKIE2 addresses) is served regardless of activation —
        # clients hold long-TTL references into it; only *challenges* to
        # plain queries and *drops* of invalid cookies are gated by the
        # activation threshold (handled inside the handlers via `active`)
        if to_cookie_subnet:
            self._handle_cookie2_query(packet, datagram, message, active)
            return "drop"
        return self._handle_ans_query(packet, datagram, message, active)

    # -- query paths -------------------------------------------------------------------

    def _handle_ans_query(
        self, packet: Packet, datagram: UdpDatagram, message: Message, active: bool = True
    ) -> str:
        now = self.node.sim.now
        src = packet.src

        cookie = extract_cookie(message)
        if cookie is not None:
            # modified-DNS scheme
            if cookie == ZERO_COOKIE:
                self._grant_cookie(packet, datagram, message)
                return "drop"
            if self.cookies.verify(cookie, src):
                self.valid_cookies += 1
                self._mark_verified(src)
                if active and not self.rl2.allow(src, now):
                    self.rl2_drops += 1
                    self._watched_reject(src)
                    self._note("modified", "rl2_drop", packet.span)
                    return "drop"
                self._note("modified", "forward", packet.span)
                self._strip_and_forward(packet, datagram, message)
                return "drop"
            if active:
                self.invalid_drops += 1
                self._watched_reject(src)
                self._charge(self.costs.drop_invalid)
                self._note("modified", "invalid_drop", packet.span)
                return "drop"
            # no detection while inactive: pass it through, cookie stripped.
            # Unverified admission is by design below the activation
            # threshold (§IV.C): checking only engages once offered load
            # exceeds what the ANS can absorb.
            self._note("modified", "forward", packet.span)
            self._strip_and_forward(packet, datagram, message)  # repro: allow[T001] inactive-mode pass-through, gated by activation threshold
            return "drop"

        decoded = decode_cookie_name(
            message.question.qname,
            self.origin,
            cookie_length=self.cookies.label_cookie_length,
        )
        if decoded is not None:
            # DNS-based scheme, message 3: the fabricated namespace must be
            # served even while inactive — clients cache these names with
            # long TTLs — but verification only gates it while active
            if not active or self.cookies.verify_label(decoded.cookie_label, src):
                if active:
                    self.valid_cookies += 1
                    self._mark_verified(src)
                    if not self.rl2.allow(src, now):
                        self.rl2_drops += 1
                        self._watched_reject(src)
                        self._note("ns_name", "rl2_drop", packet.span)
                        return "drop"
                self._note("ns_name", "forward", packet.span)
                self._restore_and_forward(packet, datagram, message, decoded)
                return "drop"
            self.invalid_drops += 1
            self._watched_reject(src)
            self._charge(self.costs.drop_invalid)
            self._note("ns_name", "invalid_drop", packet.span)
            return "drop"

        # plain query from an unverified requester: only challenged while
        # detection is engaged
        if not active:
            self.forwarded_inactive += 1
            return "forward"
        action = self.policy_for(src)
        if action == "forward":
            self._note("plain", "forward", packet.span)
            self._submit(self.costs.forward, self._safe_send, packet)
            return "drop"
        if action == "drop":
            # the cookie/label checks above already ran, so a policy drop
            # still costs a verification's worth of CPU
            self.invalid_drops += 1
            self._watched_reject(src)
            self._charge(self.costs.drop_invalid)
            self._note("plain", "policy_drop", packet.span)
            return "drop"
        if not self.rl1.allow(src, now):
            self.rl1_drops += 1
            self._watched_reject(src)
            self._charge(self.costs.per_packet)
            self._note("plain", "rl1_drop", packet.span)
            return "drop"
        if action == "dns":
            label = self.cookies.label_cookie(src)
            reply = fabricated_referral(message, self.origin, label, ttl=self.ns_ttl)
            if reply is not None:
                self.referrals_fabricated += 1
                self._note("ns_name", "challenge", packet.span)
                self._submit(
                    self.costs.fabricate_response,
                    self._send_udp,
                    reply,
                    src,
                    datagram.sport,
                    packet.dst,
                )
                return "drop"
            # name does not fit in a cookie label: escalate along the
            # core's scheme chain (dns -> tcp)
            action = fallback_policy(action)
        self.truncations_sent += 1
        self._note("tcp", "challenge", packet.span)
        self._submit(
            self.costs.truncate_response,
            self._send_udp,
            make_truncated_response(message),
            src,
            datagram.sport,
            packet.dst,
        )
        return "drop"

    def _grant_cookie(self, packet: Packet, datagram: UdpDatagram, message: Message) -> None:
        """Messages 2 -> 3 of Figure 3a: answer with the requester's cookie."""
        now = self.node.sim.now
        if not self.rl1.allow(packet.src, now):
            self.rl1_drops += 1
            self._charge(self.costs.per_packet)
            self._note("modified", "rl1_drop", packet.span)
            return
        grant = make_response(message)
        attach_cookie(grant, self.cookies.cookie(packet.src))
        self.cookies_granted += 1
        self._note("modified", "grant", packet.span)
        self._submit(
            self.costs.fabricate_response,
            self._send_udp,
            grant,
            packet.src,
            datagram.sport,
            packet.dst,
        )

    def _strip_and_forward(
        self, packet: Packet, datagram: UdpDatagram, message: Message
    ) -> None:
        """Validated modified-DNS query: remove the cookie, pass to the ANS."""
        clean = copy.copy(message)
        clean.additionals = list(message.additionals)
        strip_cookie(clean)
        forwarded = Packet(
            src=packet.src,
            dst=packet.dst,
            segment=UdpDatagram(datagram.sport, datagram.dport, DnsPayload(clean)),
            span=packet.span,
        )
        self._submit(self.costs.validate_and_forward, self._safe_send, forwarded)

    def _restore_and_forward(
        self, packet: Packet, datagram: UdpDatagram, message: Message, decoded
    ) -> None:
        """Message 3 -> 4: restore the original question toward the ANS."""
        key = (packet.src, datagram.sport, message.header.msg_id)
        if len(self._pending) >= PENDING_CAP:
            del self._pending[next(iter(self._pending))]
        self._pending[key] = _Pending(
            kind="cookie-name",
            cookie_qname=message.question.qname,
            rewrite_source=None,
            original_qname=decoded.original_qname,
            qtype=message.question.qtype,
            expires_at=self.node.sim.now + self.pending_timeout,
        )
        restored = make_query(
            decoded.original_qname, message.question.qtype, msg_id=message.header.msg_id
        )
        forwarded = Packet(
            src=packet.src,
            dst=self.ans_address,
            segment=UdpDatagram(datagram.sport, 53, DnsPayload(restored)),
            span=packet.span,
        )
        self._submit(self.costs.validate_and_forward, self._safe_send, forwarded)

    def _handle_cookie2_query(
        self, packet: Packet, datagram: UdpDatagram, message: Message, active: bool = True
    ) -> None:
        """Message 7: a query addressed to a fabricated COOKIE2 address.

        Served regardless of activation (clients cache COOKIE2 addresses
        with long TTLs); the cookie check and rate limit apply while active.
        """
        now = self.node.sim.now
        r_y = self.cookie_host_range
        y = int(packet.dst) - int(self.cookie_subnet.network_address) - 1
        if active:
            if not self.cookies.verify_ip_cookie(y, packet.src, r_y):
                self.invalid_drops += 1
                self._watched_reject(packet.src)
                self._charge(self.costs.drop_invalid)
                self._note("fabricated", "invalid_drop", packet.span)
                return
            self.valid_cookies += 1
            self._mark_verified(packet.src)
            if not self.rl2.allow(packet.src, now):
                self.rl2_drops += 1
                self._watched_reject(packet.src)
                self._note("fabricated", "rl2_drop", packet.span)
                return
        question = message.question
        cached = self._answer_cache.get((question.qname, question.qtype))
        if cached is not None and cached.expires_at > now:
            reply = make_response(message, authoritative=True)
            reply.answers.extend(cached.records)
            self._note("fabricated", "cached_answer", packet.span)
            self._submit(
                self.costs.serve_cached_answer,
                self._send_udp,
                reply,
                packet.src,
                datagram.sport,
                packet.dst,
            )
            return
        # no cached answer: DNAT the query to the real ANS (messages 8/9)
        key = (packet.src, datagram.sport, message.header.msg_id)
        if len(self._pending) >= PENDING_CAP:
            del self._pending[next(iter(self._pending))]
        self._pending[key] = _Pending(
            kind="dnat",
            cookie_qname=None,
            rewrite_source=packet.dst,
            original_qname=question.qname,
            qtype=question.qtype,
            expires_at=now + self.pending_timeout,
        )
        self._note("fabricated", "forward", packet.span)
        forwarded = Packet(
            src=packet.src,
            dst=self.ans_address,
            segment=UdpDatagram(datagram.sport, 53, DnsPayload(message)),
            span=packet.span,
        )
        # while inactive the COOKIE2 namespace is served without the IP
        # check (clients hold long-TTL fabricated addresses, §IV.C); the
        # active path above verified before reaching here
        self._submit(self.costs.validate_and_forward, self._safe_send, forwarded)  # repro: allow[T001] inactive-mode COOKIE2 service, gated by activation threshold

    # -- response path -------------------------------------------------------------------

    def _handle_ans_response(self, packet: Packet, datagram: UdpDatagram) -> str:
        payload = datagram.payload
        if not isinstance(payload, DnsPayload):
            return "forward"
        message = payload.message
        key = (packet.dst, datagram.dport, message.header.msg_id)
        pending = self._pending.pop(key, None)
        if pending is None:
            return "forward"
        if pending.kind == "dnat":
            rewritten = Packet(
                src=pending.rewrite_source,
                dst=packet.dst,
                segment=UdpDatagram(53, datagram.dport, DnsPayload(message)),
                span=packet.span,
            )
            self.responses_transformed += 1
            self._note("fabricated", "response_rewrite", packet.span)
            self._submit(self.costs.transform_response, self._safe_send, rewritten)
            return "drop"

        # cookie-name exchange: message 5 -> message 6
        glue = self._referral_addresses(message, pending.original_qname)
        original_question = make_query(
            pending.cookie_qname, RRType.A, msg_id=message.header.msg_id
        )
        if glue:
            reply = cookie_name_answer(original_question, glue)
        else:
            # non-referral answer: fabricate COOKIE2 and cache the real answer
            cookie2 = self.cookie2_address(packet.dst)
            if cookie2 is None:
                # no fabricated subnet configured: cannot run this variant;
                # answer with the ANS's own address so the requester returns
                reply = cookie_name_answer(
                    original_question, [self.ans_address], ttl=self.ns_ttl
                )
            else:
                reply = cookie_name_answer(original_question, [cookie2], ttl=self.ns_ttl)
            if message.answers:
                self._answer_cache[(pending.original_qname, pending.qtype)] = _CachedAnswer(
                    list(message.answers), self.node.sim.now + self.answer_cache_ttl
                )
                if len(self._answer_cache) > 4096:
                    self._answer_cache.pop(next(iter(self._answer_cache)))
        self.responses_transformed += 1
        self._note("ns_name", "response_rewrite", packet.span)
        self._submit(
            self.costs.transform_response,
            self._send_udp,
            reply,
            packet.dst,
            datagram.dport,
            packet.src,
        )
        return "drop"

    @staticmethod
    def _referral_addresses(message: Message, qname: Name) -> list[ResourceRecord]:
        """Glue A records if ``message`` is a referral for ``qname``; else []."""
        if message.answers:
            return []
        ns_targets = {
            rr.rdata.target  # type: ignore[union-attr]
            for rr in message.authorities
            if rr.rtype == RRType.NS and qname.is_subdomain_of(rr.name)
        }
        if not ns_targets:
            return []
        return [
            rr
            for rr in message.additionals
            if rr.rtype == RRType.A and rr.name in ns_targets
        ]

    # -- plumbing ---------------------------------------------------------------------------

    def _send_udp(self, message: Message, dst: IPv4Address, dport: int, src: IPv4Address) -> None:
        """Send a guard-fabricated reply, spoofing the queried address."""
        packet = Packet(src=src, dst=dst, segment=UdpDatagram(53, dport, DnsPayload(message)))
        self._safe_send(packet)

    def _safe_send(self, packet: Packet) -> None:
        """Send, treating unroutable destinations (spoofed sources whose
        address goes nowhere) as silent drops — the Internet would eat them."""
        try:
            self.node.send(packet)
        except RoutingError:
            self.unroutable_replies += 1

    def _submit(self, cost: float, fn, *args) -> None:
        if not self.node.cpu.submit(cost, fn, *args):
            self.overload_drops += 1

    def _charge(self, cost: float) -> None:
        if not self.node.cpu.charge(cost):
            self.overload_drops += 1

    def _sweep(self) -> None:
        now = self.node.sim.now
        expired = [key for key, entry in self._pending.items() if entry.expires_at <= now]
        for key in expired:
            del self._pending[key]
        dead = [key for key, entry in self._answer_cache.items() if entry.expires_at <= now]
        for key in dead:
            del self._answer_cache[key]
        self._sweeper = self.node.sim.schedule(
            1.0, self._sweep, priority=BOUNDARY_PRIORITY
        )

    @property
    def pending_exchanges(self) -> int:
        return len(self._pending)

    def stats(self) -> dict[str, int | float]:
        """A point-in-time snapshot of the guard's operational counters."""
        snapshot: dict[str, int | float] = {
            "crashes": self.crashes,
            "queries_seen": self.queries_seen,
            "cookies_granted": self.cookies_granted,
            "referrals_fabricated": self.referrals_fabricated,
            "truncations_sent": self.truncations_sent,
            "valid_cookies": self.valid_cookies,
            "invalid_drops": self.invalid_drops,
            "rl1_drops": self.rl1_drops,
            "rl2_drops": self.rl2_drops,
            "overload_drops": self.overload_drops,
            "responses_transformed": self.responses_transformed,
            "forwarded_inactive": self.forwarded_inactive,
            "unroutable_replies": self.unroutable_replies,
            "admission_shed": self.admission_shed,
            "watched_rejects": self.watched_rejects,
            "verified_sources": len(self._verified_sources),
            "pending_exchanges": self.pending_exchanges,
            "cookie_computations": self.cookies.computations,
            "cpu_busy_seconds": self.node.cpu.completed_busy_seconds(),
            "rl1_allowed": self.rl1.allowed,
            "rl1_denied": self.rl1.denied,
            "rl2_allowed": self.rl2.allowed,
            "rl2_denied": self.rl2.denied,
        }
        if self.tcp_proxy is not None:
            snapshot["tcp_requests_proxied"] = self.tcp_proxy.requests_proxied
            snapshot["tcp_connections_accepted"] = self.tcp_proxy.connections_accepted
            snapshot["tcp_connections_reaped"] = self.tcp_proxy.connections_reaped
        return snapshot
