"""Memory-rule registry and the state-exhaustion analysis entry point.

:func:`analyze_memory` is the resource sibling of
:func:`repro.analysis.perf.engine.analyze_perf`: it loads the modules
once, infers the hot set (so M001/M003 know which functions run per
attacker packet and which sweeps a scheduler actually reaches), reads
every module's ``__state_bounds__`` declaration, runs the M-rules, and
filters through the same inline-suppression syntax (``# repro:
allow[M001]``) and optional
:class:`~repro.analysis.engine.SuppressionTracker` the other engines
use.  Accepted findings live in ``scripts/memory_baseline.json`` and
self-shrink through U001 exactly like the flow/perf baselines.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from ..findings import Finding
from ..flow.core import ModuleInfo, load_modules
from ..perf.hotpath import PerfProfile, compute_hot_paths, load_profile
from .rules import MEMORY_CHECKS, build_view

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import SuppressionTracker


@dataclasses.dataclass(frozen=True, slots=True)
class MemoryRule:
    """Registry metadata for one memory rule (the checks live in .rules)."""

    id: str
    summary: str
    rationale: str
    family: str  # "memory" (static) or "memory-runtime"
    severity: str = "error"


MEMORY_RULES: dict[str, MemoryRule] = {
    rule.id: rule
    for rule in (
        MemoryRule(
            "M001",
            "attacker-keyed collection written on an attacker-driven path "
            "with no declared bound",
            "a spoofed flood chooses the keys, so an undeclared table is a "
            "one-line memory DoS; declare it in __state_bounds__ with an "
            "enforced bound (the paper's §III soft state is bounded by "
            "construction)",
            "memory",
        ),
        MemoryRule(
            "M002",
            "declared cap/lru bound with an insert site that performs no "
            "cap check or eviction",
            "a bound that is not enforced wherever the collection grows is "
            "documentation, not a defense; every insert site must carry a "
            "len() check or an eviction on the same table",
            "memory",
        ),
        MemoryRule(
            "M003",
            "sweep-declared soft state with no eviction reachable from a "
            "scheduled callback",
            "TIME_WAIT entries, pending challenges and cookie generations "
            "expire only if a sweep actually runs; an unreachable sweep "
            "means entries inserted under flood live forever",
            "memory",
        ),
        MemoryRule(
            "M004",
            "early return/raise between an insert and its cap enforcement",
            "an exception or early-return path that skips the cap lets an "
            "attacker grow the table past its bound by triggering that "
            "path; evict-then-insert is bypass-proof",
            "memory",
        ),
        MemoryRule(
            "M005",
            "unbudgeted self-reschedule that also grows a collection",
            "a callback that unconditionally reschedules itself while "
            "inserting accumulates state every firing with no budget; "
            "sweeps must be evict-only and retries must be bounded",
            "memory",
        ),
        MemoryRule(
            "M006",
            "observed collection size exceeded its declared bound "
            "(runtime high-water mark)",
            "the dynamic witness for the static claim: the monitor samples "
            "declared collections under flood and fails if any high-water "
            "mark crosses the declared capacity",
            "memory-runtime",
        ),
    )
}


def _select(rule_ids: Iterable[str] | None) -> frozenset[str]:
    if rule_ids is None:
        return frozenset(MEMORY_RULES)
    selected = frozenset(rule_ids)
    unknown = sorted(selected - set(MEMORY_RULES))
    if unknown:
        raise KeyError(f"unknown memory rule ids: {', '.join(unknown)}")
    return selected


def analyze_memory(
    paths: Iterable[str | Path],
    *,
    rule_ids: Iterable[str] | None = None,
    tracker: "SuppressionTracker | None" = None,
    profile: str | Path | PerfProfile | None = None,
    modules: list[ModuleInfo] | None = None,
) -> list[Finding]:
    """Run the selected memory rules over every Python file under ``paths``.

    ``modules`` reuses an already-parsed module set (one parse per file
    across all rule families).

    ``profile`` is the same ``BENCH_profile.json`` the perf engine takes —
    profiled handler roots widen the hot set M001/M003 consult; the static
    schedule-site roots alone are enough for the repo gate.
    """
    from ..engine import suppressed_rules

    selected = _select(rule_ids)
    if modules is None:
        modules = load_modules(paths)
    parsed_profile: PerfProfile | None
    if isinstance(profile, PerfProfile) or profile is None:
        parsed_profile = profile
    else:
        parsed_profile = load_profile(profile)
    hot_paths = compute_hot_paths(modules, parsed_profile)

    hot_by_path: dict[str, set[str]] = {}
    for path, qualname in hot_paths.functions:
        hot_by_path.setdefault(path, set()).add(qualname)

    findings: list[Finding] = []
    for module in modules:
        view = build_view(module, frozenset(hot_by_path.get(module.path, ())))
        for rule_id, check in MEMORY_CHECKS.items():
            if rule_id in selected:
                findings.extend(check(view))

    if tracker is not None:
        tracker.note_rules(selected)
        for module in modules:
            tracker.register_source(module.path, module.source)
        kept = [f for f in findings if not tracker.is_suppressed(f)]
    else:
        allowed_by_path = {
            module.path: suppressed_rules(module.source) for module in modules
        }
        kept = [
            f
            for f in findings
            if f.rule not in allowed_by_path.get(f.path, {}).get(f.line, ())
        ]
    return sorted(kept, key=Finding.sort_key)


def memory_rule_table() -> str:
    """Plain-text rule table matching the lint CLI's ``--list-rules`` style."""
    lines = ["rule   summary", "-----  -------"]
    for rule_id in sorted(MEMORY_RULES):
        rule = MEMORY_RULES[rule_id]
        lines.append(f"{rule_id:<6} {rule.summary}")
        lines.append(f"       why: {rule.rationale}")
    return "\n".join(lines)
