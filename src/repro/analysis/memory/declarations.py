"""State-bound declarations: which collections the memory rules watch.

A module *self-describes* its long-lived collections by declaring a
module-level literal named ``__state_bounds__``, next to its
``__trust_boundary__`` and ``__shared_state__``.  The memory analyser
reads the declaration **statically** (``ast.literal_eval`` on the
assignment) for M001–M005 and **at runtime** (plain attribute access on
the imported module) for the high-water-mark monitor behind M006::

    __state_bounds__ = {
        "RemoteDnsGuard": {
            "_pending": {
                "bound": 4096,
                "evicted_by": "sweep+cap",
                "keyed_by": "attacker",
            },
        },
    }

Field semantics:

``bound``
    The maximum number of entries the collection may ever hold.  This is
    the number the runtime monitor enforces: an observed size above it is
    an M006 finding, turning the static claim into a dynamic witness.
``evicted_by``
    How entries leave, ``+``-combinable from :data:`EVICTION_MECHANISMS`:
    ``cap`` (a size check at every insert site — M002 verifies the check
    is statically present), ``lru`` (an ``OrderedDict`` recency eviction,
    checked like ``cap``), ``sweep`` (a scheduled expiry sweep — M003
    verifies an eviction-performing function is reachable from a schedule
    site), ``lifecycle`` (protocol-driven removal: close/abort/response;
    carries no static obligation on its own, which is why it should be
    combined with ``cap`` when the key is attacker-controlled).
``keyed_by``
    Who controls the key space: ``attacker`` (spoofable source address,
    qname, msg id, ISN — the §III threat model), ``internal`` (peer set
    chosen by legitimate on-path components), or ``config`` (finite
    domain fixed at construction).  Attacker-keyed collections are the
    ones M001 insists must be declared at all.

A module with attacker-facing ``taint_params`` but genuinely *no*
long-lived collections declares the honest empty form
``__state_bounds__ = {}`` so M001's scope stays explicit.
"""

from __future__ import annotations

import ast
import dataclasses

from ..declarations import find_declaration_dict

DECL_NAME = "__state_bounds__"

#: The eviction vocabulary a declaration may combine with ``+``.
EVICTION_MECHANISMS = frozenset({"cap", "lru", "sweep", "lifecycle"})

#: The key-provenance vocabulary.
KEY_PROVENANCE = frozenset({"attacker", "internal", "config"})


@dataclasses.dataclass(frozen=True, slots=True)
class StateBound:
    """One declared collection: its owner, capacity and eviction story."""

    class_name: str
    attr: str
    bound: int
    evicted_by: frozenset[str]
    keyed_by: str

    def describe(self) -> str:
        how = "+".join(sorted(self.evicted_by))
        return (
            f"{self.class_name}.{self.attr} "
            f"(bound {self.bound}, evicted by {how}, {self.keyed_by}-keyed)"
        )


def find_declaration(tree: ast.AST) -> tuple[dict, int] | None:
    """The module's ``__state_bounds__`` literal and its line, or None."""
    return find_declaration_dict(tree, DECL_NAME)


def parse_declaration(raw: dict | None) -> dict[str, dict[str, StateBound]]:
    """Normalise a raw ``__state_bounds__`` dict to per-class, per-attr
    :class:`StateBound` records.  Malformed entries are dropped — the
    static pass is what reports incomplete declarations, not the parser."""
    if not isinstance(raw, dict):
        return {}
    decls: dict[str, dict[str, StateBound]] = {}
    for class_name, attrs in raw.items():
        if not isinstance(attrs, dict):
            continue
        per_class: dict[str, StateBound] = {}
        for attr, spec in attrs.items():
            if not isinstance(spec, dict):
                continue
            try:
                bound = int(spec.get("bound", 0))
            except (TypeError, ValueError):
                continue
            mechanisms = frozenset(
                part.strip()
                for part in str(spec.get("evicted_by", "")).split("+")
                if part.strip()
            )
            per_class[str(attr)] = StateBound(
                class_name=str(class_name),
                attr=str(attr),
                bound=bound,
                evicted_by=mechanisms & EVICTION_MECHANISMS,
                keyed_by=str(spec.get("keyed_by", "internal")),
            )
        decls[str(class_name)] = per_class
    return decls


def declarations_for_module(
    tree: ast.AST,
) -> tuple[dict[str, dict[str, StateBound]], int] | None:
    """Static read: (class -> attr -> bound, declaration line) or None
    when the module declares nothing (``{}`` counts as declaring)."""
    found = find_declaration(tree)
    if found is None:
        return None
    raw, lineno = found
    return parse_declaration(raw), lineno
