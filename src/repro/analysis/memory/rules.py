"""The M-rule checks: state-exhaustion patterns over ``__state_bounds__``.

Each check is a function ``(view) -> list[Finding]`` over one module's
:class:`ModuleView`; the registry in ``.engine`` maps rule ids to
checks.  The analysis composes the repo's two existing inference
layers:

* the **taint surface** from ``__trust_boundary__`` (which parameters
  carry attacker-controlled packet fields) decides whether a collection
  key is attacker-chosen, and the trust model's ``entry_points`` seed the
  attacker-callable closure;
* the **hot set** from :mod:`repro.analysis.perf.hotpath` (schedule-site
  callbacks and ``Node.receive`` reachability) decides whether an insert
  runs per event and whether a sweep is actually reachable from a
  scheduled callback.

The checks are deliberately syntactic about *mechanism* — a cap is a
``len(self.attr)`` comparison or an eviction call in the same function as
the insert — because that is the property the runtime monitor can then
witness: a bound that is enforced wherever it can be exceeded.
"""

from __future__ import annotations

import ast
import dataclasses

from ..findings import Finding
from ..flow.core import FunctionDecl, ModuleInfo
from .declarations import StateBound, declarations_for_module

#: Methods whose call on ``self.attr`` adds an entry.
_INSERT_METHODS = frozenset({"setdefault", "append", "add", "insert", "update"})

#: Methods whose call on ``self.attr`` removes entries.
_EVICT_METHODS = frozenset({"pop", "popitem", "clear", "remove", "discard"})

#: Scheduler entry points (matched by attribute suffix, like the races
#: and perf layers do).
_SCHEDULE_NAMES = frozenset({"schedule", "schedule_at"})

#: Call-graph depth cap for the attacker-callable closure.
_MAX_DEPTH = 12


def _self_attr_target(node: ast.expr) -> str | None:
    """``attr`` for an ``self.attr`` / ``cls.attr`` expression."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    ):
        return node.attr
    return None


@dataclasses.dataclass(slots=True)
class _Op:
    """One insert or evict touching ``self.<attr>``."""

    attr: str
    node: ast.AST
    key: ast.expr | None  # the key expression for keyed inserts


def _collect_ops(func: ast.AST) -> tuple[list[_Op], list[_Op]]:
    """(inserts, evictions) on self-attributes under ``func``."""
    inserts: list[_Op] = []
    evictions: list[_Op] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    attr = _self_attr_target(target.value)
                    if attr is not None:
                        inserts.append(_Op(attr, node, target.slice))
                elif isinstance(node, ast.Assign):
                    attr = _self_attr_target(target)
                    if attr is not None and isinstance(
                        node.value, (ast.Dict, ast.DictComp, ast.ListComp, ast.List)
                    ):
                        # wholesale rebind: the filtered-rebuild sweep idiom
                        evictions.append(_Op(attr, node, None))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = _self_attr_target(target.value)
                    if attr is not None:
                        evictions.append(_Op(attr, node, None))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = _self_attr_target(node.func.value)
            if attr is None:
                continue
            method = node.func.attr
            if method in _INSERT_METHODS:
                key = node.args[0] if node.args else None
                inserts.append(_Op(attr, node, key))
            elif method in _EVICT_METHODS:
                evictions.append(_Op(attr, node, None))
    return inserts, evictions


def _cap_check_lines(func: ast.AST, attr: str) -> list[int]:
    """Lines comparing ``len(self.attr)`` against anything."""
    lines: list[int] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Compare):
            continue
        for operand in (node.left, *node.comparators):
            if (
                isinstance(operand, ast.Call)
                and isinstance(operand.func, ast.Name)
                and operand.func.id == "len"
                and operand.args
                and _self_attr_target(operand.args[0]) == attr
            ):
                lines.append(getattr(node, "lineno", 0))
    return lines


def _tainted_names(func_node: ast.AST, params: list[str], taint_params) -> set[str]:
    """Names holding attacker data in ``func_node``: tainted parameters
    plus simple forward propagation through assignments, in source order."""
    tainted = {p for p in params if p in taint_params}
    if not tainted:
        return tainted

    def mentions(expr: ast.expr) -> bool:
        return any(
            isinstance(n, ast.Name) and n.id in tainted for n in ast.walk(expr)
        )

    class _Prop(ast.NodeVisitor):
        def visit_Assign(self, node: ast.Assign) -> None:
            if mentions(node.value):
                for target in node.targets:
                    # only plain (possibly tuple-destructured) name bindings
                    # propagate; storing into self.attr[...] must not taint
                    # the receiver name itself
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        continue
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name) and name.id not in (
                            "self",
                            "cls",
                        ):
                            tainted.add(name.id)
            self.generic_visit(node)

    _Prop().visit(func_node)
    return tainted


@dataclasses.dataclass(slots=True)
class ModuleView:
    """Everything the M-checks need about one module, computed once."""

    module: ModuleInfo
    #: class -> attr -> StateBound; None when no declaration exists at all
    bounds: dict[str, dict[str, StateBound]] | None
    decl_line: int
    #: qualnames reachable from the trust model's entry points (plus the
    #: hot set, unioned by the caller) — where attacker packets execute
    attacker_callable: frozenset[str]

    def bound_for(self, qualname: str, attr: str) -> StateBound | None:
        if self.bounds is None:
            return None
        class_name = qualname.split(".", 1)[0] if "." in qualname else ""
        return self.bounds.get(class_name, {}).get(attr)

    def declared_attrs(self, class_name: str) -> dict[str, StateBound]:
        if self.bounds is None:
            return {}
        return self.bounds.get(class_name, {})


def _entry_closure(module: ModuleInfo) -> frozenset[str]:
    """Qualnames reachable from the module's trust entry points through
    local ``self.helper()`` / bare-name calls (depth-bounded)."""
    entries: list[str] = []
    for qualname in module.functions:
        bare = qualname.rsplit(".", 1)[-1]
        for ep in module.trust.entry_points:
            if qualname == ep or bare == ep or qualname.endswith("." + ep):
                entries.append(qualname)
                break
    seen: set[str] = set()
    frontier = [(q, 0) for q in entries]
    while frontier:
        qualname, depth = frontier.pop()
        if qualname in seen or depth > _MAX_DEPTH:
            continue
        seen.add(qualname)
        decl = module.functions[qualname]
        enclosing = qualname.split(".", 1)[0] if "." in qualname else None
        for node in ast.walk(decl.node):
            if not isinstance(node, ast.Call):
                continue
            callee = _self_attr_target(node.func)
            if callee is None and isinstance(node.func, ast.Name):
                callee = node.func.id
            if callee is None:
                continue
            target = None
            if enclosing is not None:
                target = module.functions.get(f"{enclosing}.{callee}")
            if target is None:
                target = module.function_named(callee)
            if target is not None and target.qualname not in seen:
                frontier.append((target.qualname, depth + 1))
    return frozenset(seen)


def build_view(module: ModuleInfo, hot_qualnames: frozenset[str]) -> ModuleView:
    declared = declarations_for_module(module.tree)
    if declared is None:
        bounds, decl_line = None, 1
    else:
        bounds, decl_line = declared
    return ModuleView(
        module=module,
        bounds=bounds,
        decl_line=decl_line,
        attacker_callable=_entry_closure(module) | hot_qualnames,
    )


def _finding(view: ModuleView, node: ast.AST, rule: str, message: str) -> Finding:
    return Finding(
        path=view.module.path,
        line=getattr(node, "lineno", view.decl_line),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
    )


# ---------------------------------------------------------------------------
# M001 — attacker-keyed insert on an attacker-driven path, no declared bound
# ---------------------------------------------------------------------------


def check_m001(view: ModuleView) -> list[Finding]:
    module = view.module
    if not module.trust.taint_params:
        return []
    findings: list[Finding] = []
    for qualname, decl in module.functions.items():
        if qualname not in view.attacker_callable:
            continue
        inserts, _ = _collect_ops(decl.node)
        if not inserts:
            continue
        tainted = _tainted_names(decl.node, decl.params, module.trust.taint_params)
        if not tainted:
            continue
        for op in inserts:
            if view.bound_for(qualname, op.attr) is not None:
                continue
            key = op.key
            if key is None or not any(
                isinstance(n, ast.Name) and n.id in tainted for n in ast.walk(key)
            ):
                continue
            findings.append(
                _finding(
                    view,
                    op.node,
                    "M001",
                    f"attacker-keyed insert into undeclared collection "
                    f"self.{op.attr} in {qualname} — a spoofed flood chooses "
                    f"the keys, so the table needs a __state_bounds__ entry "
                    f"with an enforced bound",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# M002 — declared cap/lru bound with an insert site that cannot enforce it
# ---------------------------------------------------------------------------


def check_m002(view: ModuleView) -> list[Finding]:
    if not view.bounds:
        return []
    findings: list[Finding] = []
    for qualname, decl in view.module.functions.items():
        inserts, evictions = _collect_ops(decl.node)
        evicted_attrs = {op.attr for op in evictions}
        for op in inserts:
            bound = view.bound_for(qualname, op.attr)
            if bound is None or not (bound.evicted_by & {"cap", "lru"}):
                continue
            if op.attr in evicted_attrs or _cap_check_lines(decl.node, op.attr):
                continue
            findings.append(
                _finding(
                    view,
                    op.node,
                    "M002",
                    f"insert into {bound.describe()} with no cap check or "
                    f"eviction in {qualname} — the declared bound is not "
                    f"statically enforced at this insert site",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# M003 — sweep-declared soft state with no scheduled sweep reaching it
# ---------------------------------------------------------------------------


def check_m003(view: ModuleView) -> list[Finding]:
    if not view.bounds:
        return []
    findings: list[Finding] = []
    for class_name, attrs in sorted(view.bounds.items()):
        for attr, bound in sorted(attrs.items()):
            if "sweep" not in bound.evicted_by:
                continue
            swept = False
            for qualname, decl in view.module.functions.items():
                if not qualname.startswith(class_name + "."):
                    continue
                _, evictions = _collect_ops(decl.node)
                if any(op.attr == attr for op in evictions):
                    if qualname in view.attacker_callable or _is_hot_only(
                        view, qualname
                    ):
                        swept = True
                        break
            if not swept:
                findings.append(
                    Finding(
                        path=view.module.path,
                        line=view.decl_line,
                        col=0,
                        rule="M003",
                        message=(
                            f"{bound.describe()} declares sweep eviction but "
                            f"no eviction-performing method is reachable from "
                            f"a scheduled callback — entries inserted under "
                            f"flood never expire"
                        ),
                    )
                )
    return findings


def _is_hot_only(view: ModuleView, qualname: str) -> bool:
    # attacker_callable already unions the hot set; kept as a seam for
    # callers that pass a narrower closure
    return qualname in view.attacker_callable


# ---------------------------------------------------------------------------
# M004 — insert that can bypass its cap on an early-return/raise path
# ---------------------------------------------------------------------------


def check_m004(view: ModuleView) -> list[Finding]:
    if not view.bounds:
        return []
    findings: list[Finding] = []
    for qualname, decl in view.module.functions.items():
        inserts, evictions = _collect_ops(decl.node)
        for op in inserts:
            bound = view.bound_for(qualname, op.attr)
            if bound is None or not (bound.evicted_by & {"cap", "lru"}):
                continue
            insert_line = getattr(op.node, "lineno", 0)
            enforce_lines = _cap_check_lines(decl.node, op.attr) + [
                getattr(e.node, "lineno", 0)
                for e in evictions
                if e.attr == op.attr
            ]
            if any(l <= insert_line for l in enforce_lines):
                continue  # enforcement precedes the insert: bypass-proof
            after = sorted(l for l in enforce_lines if l > insert_line)
            if not after:
                continue
            enforce_line = after[0]
            for node in ast.walk(decl.node):
                if isinstance(node, (ast.Return, ast.Raise)):
                    line = getattr(node, "lineno", 0)
                    if insert_line < line < enforce_line:
                        findings.append(
                            _finding(
                                view,
                                node,
                                "M004",
                                f"early {'return' if isinstance(node, ast.Return) else 'raise'} "
                                f"between the insert into self.{op.attr} "
                                f"(line {insert_line}) and its cap enforcement "
                                f"(line {enforce_line}) in {qualname} — the "
                                f"bound on {bound.describe()} can be bypassed",
                            )
                        )
    return findings


# ---------------------------------------------------------------------------
# M005 — unbudgeted self-reschedule that also grows a collection
# ---------------------------------------------------------------------------


def check_m005(view: ModuleView) -> list[Finding]:
    if view.bounds is None:
        return []
    findings: list[Finding] = []
    for qualname, decl in view.module.functions.items():
        bare = qualname.rsplit(".", 1)[-1]
        inserts, evictions = _collect_ops(decl.node)
        # the sweep idiom (rebuild/shrink a table it also evicts from) is
        # net non-growing; only inserts with no matching eviction count
        evicted_attrs = {op.attr for op in evictions}
        growing = [op for op in inserts if op.attr not in evicted_attrs]
        if not growing:
            continue
        for site in _unguarded_self_reschedules(decl, bare):
            findings.append(
                _finding(
                    view,
                    site,
                    "M005",
                    f"{qualname} reschedules itself unconditionally while "
                    f"inserting into self.{growing[0].attr} — each firing "
                    f"grows state with no budget; guard the reschedule or "
                    f"make the callback evict-only",
                )
            )
    return findings


def _unguarded_self_reschedules(decl: FunctionDecl, bare: str) -> list[ast.Call]:
    """Schedule calls whose callback is the enclosing function itself and
    that no enclosing ``if``/``while`` guards."""
    guarded: set[ast.AST] = set()
    for node in ast.walk(decl.node):
        if isinstance(node, (ast.If, ast.While)):
            for child in node.body + getattr(node, "orelse", []):
                guarded.update(ast.walk(child))
    sites: list[ast.Call] = []
    for node in ast.walk(decl.node):
        if not isinstance(node, ast.Call) or node in guarded:
            continue
        func = node.func
        suffix = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if suffix not in _SCHEDULE_NAMES or len(node.args) < 2:
            continue
        callback = node.args[1]
        if _self_attr_target(callback) == bare:
            sites.append(node)
    return sites


#: rule id -> per-module check.
MEMORY_CHECKS = {
    "M001": check_m001,
    "M002": check_m002,
    "M003": check_m003,
    "M004": check_m004,
    "M005": check_m005,
}
