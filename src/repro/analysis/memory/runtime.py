"""Runtime high-water-mark monitor: the dynamic witness behind M006.

The static pass proves every declared collection has an enforced bound;
this monitor checks the claim against a live run.  It imports the
package, collects every class with a ``__state_bounds__`` entry, patches
those classes' ``__setattr__`` just enough to learn which *instances*
hold a declared collection, and — from the :func:`repro.netsim.set_tie_hook`
seam — samples ``len()`` of each declared collection once per tie group.
If any observed size ever exceeds its declared bound, the run fails with
an **M006** finding naming the table, the high-water mark, and the bound.

Observation discipline (the W002 contract): the monitor never schedules,
never draws randomness, and mutates nothing it watches — ``len()`` on a
dict/list/set is a pure read.  When the monitor is off nothing is
installed at all, so ``--sanitize`` traces are bit-identical by
construction.

Entry points: :func:`run_bounds_monitored`, or
``python -m repro <cmd> --memory``.
"""

from __future__ import annotations

import dataclasses
import importlib
import pkgutil
from typing import Any, Callable

from ...netsim.simulator import Simulator, TieEvent, set_tie_hook
from ..findings import Finding
from .declarations import DECL_NAME, StateBound, parse_declaration

#: (class, source path, attr -> StateBound) for one declared class.
BoundedClass = tuple[type, str, dict[str, StateBound]]


def discover_bounded_classes(package: str = "repro") -> list[BoundedClass]:
    """Import ``package`` recursively and collect ``__state_bounds__``
    classes.  Modules that fail to import are skipped — the static pass
    is what enforces declaration presence."""
    root = importlib.import_module(package)
    module_names = [package]
    for info in pkgutil.walk_packages(root.__path__, prefix=package + "."):
        # __main__ modules run their CLI at import time — never import them
        if info.name.rsplit(".", 1)[-1] == "__main__":
            continue
        module_names.append(info.name)
    found: list[BoundedClass] = []
    seen: set[type] = set()
    for name in module_names:
        try:
            module = importlib.import_module(name)
        except Exception:  # pragma: no cover - optional/broken module
            continue
        decls = parse_declaration(getattr(module, DECL_NAME, None))
        path = getattr(module, "__file__", None) or "<runtime>"
        for class_name, attrs in sorted(decls.items()):
            cls = getattr(module, class_name, None)
            if isinstance(cls, type) and cls not in seen and attrs:
                seen.add(cls)
                found.append((cls, path, dict(attrs)))
    return found


class HighWaterMonitor:
    """Tie hook sampling declared collections' sizes against their bounds."""

    def __init__(self, declared: list[BoundedClass]):
        self._declared = declared
        self._attrs_by_class: dict[type, dict[str, StateBound]] = {
            cls: attrs for cls, _path, attrs in declared
        }
        self._paths_by_class: dict[type, str] = {
            cls: path for cls, path, _attrs in declared
        }
        self._patched: list[tuple[type, Any]] = []
        #: instances seen assigning a declared attr (identity-keyed; the
        #: ref list keeps ids stable for the run)
        self._instances: dict[int, Any] = {}
        self.samples = 0
        #: (class qualname, attr) -> max observed len()
        self.high_water: dict[tuple[str, str], int] = {}

    # -- instrumentation ---------------------------------------------------

    def install(self) -> None:
        for cls, _path, attrs in self._declared:
            self._patch_class(cls, frozenset(attrs))

    def uninstall(self) -> None:
        while self._patched:
            cls, orig_set = self._patched.pop()
            cls.__setattr__ = orig_set  # type: ignore[method-assign]

    def _patch_class(self, cls: type, tracked: frozenset[str]) -> None:
        orig_set = cls.__setattr__
        mon = self

        def __setattr__(obj, name, value):
            if name in tracked:
                mon._instances.setdefault(id(obj), obj)
            orig_set(obj, name, value)

        cls.__setattr__ = __setattr__  # type: ignore[method-assign]
        self._patched.append((cls, orig_set))

    # -- sampling ----------------------------------------------------------

    def sample(self) -> None:
        """Record the current size of every watched collection."""
        self.samples += 1
        for obj in self._instances.values():
            # subclass instances resolve to the declared base via the MRO,
            # and are recorded under the *declared* class so findings()
            # and the report match them against the right bound
            owner = None
            attrs = None
            for base in type(obj).__mro__:
                attrs = self._attrs_by_class.get(base)
                if attrs is not None:
                    owner = base
                    break
            if attrs is None or owner is None:
                continue
            for attr in attrs:
                value = getattr(obj, attr, None)
                try:
                    size = len(value)  # type: ignore[arg-type]
                except TypeError:
                    continue
                key = (owner.__qualname__, attr)
                if size > self.high_water.get(key, -1):
                    self.high_water[key] = size

    # -- tie hook ----------------------------------------------------------

    def register(self, sim: Simulator) -> None:  # pragma: no cover - trivial
        return None

    def on_group(self, sim: Simulator, events: list[TieEvent]):
        self.sample()
        return None

    def before_event(self, sim: Simulator, event: TieEvent) -> None:
        return None

    def after_event(self, sim: Simulator, event: TieEvent) -> None:
        return None

    def end_group(self, sim: Simulator) -> None:
        return None

    # -- verdict -----------------------------------------------------------

    def findings(self) -> list[Finding]:
        out: list[Finding] = []
        for cls, path, attrs in self._declared:
            for attr, bound in sorted(attrs.items()):
                seen = self.high_water.get((cls.__qualname__, attr))
                if seen is not None and seen > bound.bound:
                    out.append(
                        Finding(
                            path=path,
                            line=1,
                            col=0,
                            rule="M006",
                            message=(
                                f"high-water mark {seen} exceeds the "
                                f"declared bound on {bound.describe()} — "
                                f"the static claim has a dynamic "
                                f"counterexample"
                            ),
                        )
                    )
        return sorted(out, key=Finding.sort_key)


@dataclasses.dataclass(slots=True)
class MemoryReport:
    """Outcome of a bounds-monitored run."""

    findings: list[Finding]
    samples: int
    classes_watched: int
    instances_watched: int
    #: (class qualname, attr) -> (high-water, declared bound)
    high_water: dict[tuple[str, str], tuple[int, int]]

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        head = (
            f"memory: {'OK' if self.ok else 'BOUND EXCEEDED'} — "
            f"{self.samples} sample(s), {self.classes_watched} class(es) "
            f"watched, {self.instances_watched} instance(s) seen"
        )
        parts = [head]
        for (cls_name, attr), (seen, bound) in sorted(self.high_water.items()):
            parts.append(f"  {cls_name}.{attr}: high-water {seen} / bound {bound}")
        parts.extend(f.format_text() for f in self.findings)
        return "\n".join(parts)


def run_bounds_monitored(
    experiment: Callable[[], Any],
    *,
    quiet: bool = True,
    declared: list[BoundedClass] | None = None,
) -> MemoryReport:
    """Execute ``experiment`` once under the high-water-mark monitor.

    ``quiet`` redirects the experiment's stdout so the memory verdict is
    the only output (mirrors the race monitor).  ``declared`` overrides
    package discovery — tests monitor toy classes this way.
    """
    import contextlib
    import io

    if declared is None:
        declared = discover_bounded_classes()
    monitor = HighWaterMonitor(declared)
    previous = set_tie_hook(monitor)
    monitor.install()
    try:
        if quiet:
            with contextlib.redirect_stdout(io.StringIO()):
                experiment()
        else:
            experiment()
    finally:
        monitor.sample()  # final state, after the last tie group
        monitor.uninstall()
        set_tie_hook(previous)

    bounds_by_key: dict[tuple[str, str], int] = {}
    for cls, _path, attrs in declared:
        for attr, bound in attrs.items():
            bounds_by_key[(cls.__qualname__, attr)] = bound.bound
    high_water = {
        key: (seen, bounds_by_key.get(key, 0))
        for key, seen in monitor.high_water.items()
    }
    return MemoryReport(
        findings=monitor.findings(),
        samples=monitor.samples,
        classes_watched=len(declared),
        instances_watched=len(monitor._instances),
        high_water=high_water,
    )
