"""State-exhaustion analysis (the M-rules).

The memory layer proves the guard cannot be memory-DoSed: every
long-lived collection an attacker can grow is declared in a module-level
``__state_bounds__`` (capacity + eviction mechanism + key provenance),
a static pass composes the taint surface from ``__trust_boundary__``
with the perf layer's hot-set inference to verify the declarations are
complete (M001), enforced at every insert site (M002), swept from a
reachable scheduled callback (M003), bypass-proof on early-return paths
(M004) and growth-free under self-reschedule (M005), and a runtime
high-water-mark monitor (M006) witnesses the declared bounds under the
flood scenarios.

See DESIGN.md ("State-exhaustion model") for the mapping to the paper's
§III soft-state design.
"""

from .declarations import (
    DECL_NAME,
    EVICTION_MECHANISMS,
    KEY_PROVENANCE,
    StateBound,
    declarations_for_module,
    find_declaration,
    parse_declaration,
)
from .engine import MEMORY_RULES, MemoryRule, analyze_memory, memory_rule_table
from .runtime import (
    HighWaterMonitor,
    MemoryReport,
    discover_bounded_classes,
    run_bounds_monitored,
)

__all__ = [
    "DECL_NAME",
    "EVICTION_MECHANISMS",
    "KEY_PROVENANCE",
    "StateBound",
    "declarations_for_module",
    "find_declaration",
    "parse_declaration",
    "MEMORY_RULES",
    "MemoryRule",
    "analyze_memory",
    "memory_rule_table",
    "HighWaterMonitor",
    "MemoryReport",
    "discover_bounded_classes",
    "run_bounds_monitored",
]
