"""Runtime determinism sanitizer: run twice, hash traces, localise drift.

The lint in :mod:`repro.analysis.rules` catches determinism hazards that
are visible in the source; this module catches the ones that are not.  An
experiment (any zero-argument callable that builds and runs simulators) is
executed twice in the same process under *allocation perturbation* — a
different amount of live ballast is allocated before each run, shifting
object addresses the way a different ``PYTHONHASHSEED`` would shift string
hashes.  Anything keyed to ``id()``-ordered sets, leftover module-level
state, wall-clock reads or the process-global RNG produces a different
event stream on the second run.

Every :class:`~repro.netsim.Simulator` the experiment constructs is
observed through :func:`repro.netsim.set_trace_collector`, and its full
event trace (virtual time, sequence number, callback qualname, argument
digests) is folded into a rolling BLAKE2b hash.  The two runs match iff
every simulator's trace digest matches, pairwise in construction order.

On mismatch a third and fourth run re-execute the experiment with
per-event capture enabled up to a window bracketing the divergence (found
from checkpoint digests), and the report names the first divergent event.
Localisation is best-effort: a nondeterminism that shifts between runs is
still *detected* by the hash mismatch even if the localisation pass
brackets a different instance of it.

Entry points: :func:`run_sanitized`, or ``python -m repro <cmd> --sanitize``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import io
from typing import Any, Callable

from ..netsim.simulator import (
    TRACE_CHECKPOINT_INTERVAL,
    EventTrace,
    Simulator,
    set_trace_collector,
)

#: Extra events captured past the bracketed divergence window, so the first
#: divergent event sits safely inside the localisation pass's recording.
_WINDOW_SLACK = 2 * TRACE_CHECKPOINT_INTERVAL

#: Ballast objects allocated (and kept alive) before run ``i`` — a prime
#: stride so consecutive runs never see the same allocation layout.
_BALLAST_STRIDE = 4099


class TraceCollector:
    """Collects the :class:`EventTrace` of every simulator a run builds."""

    def __init__(self, *, keep_events: bool = False, event_limit: int | None = None):
        self.keep_events = keep_events
        self.event_limit = event_limit
        self.traces: list[EventTrace] = []

    def register(self, sim: Simulator) -> None:
        assert sim.trace is not None
        self.traces.append(sim.trace)

    @property
    def total_events(self) -> int:
        return sum(trace.count for trace in self.traces)

    def combined_hexdigest(self) -> str:
        """One digest over all simulators' trace digests, in creation order."""
        combined = hashlib.blake2b(digest_size=16)
        for trace in self.traces:
            combined.update(trace.digest())
        return combined.hexdigest()


@contextlib.contextmanager
def capture_traces(*, keep_events: bool = False, event_limit: int | None = None):
    """Context manager: trace every simulator constructed inside the block."""
    collector = TraceCollector(keep_events=keep_events, event_limit=event_limit)
    previous = set_trace_collector(collector)
    try:
        yield collector
    finally:
        set_trace_collector(previous)


@dataclasses.dataclass(slots=True)
class Divergence:
    """The first point where the two runs' event streams disagree."""

    sim_index: int
    event_index: int
    event_a: str | None
    event_b: str | None

    def __str__(self) -> str:
        lines = [
            f"first divergence: simulator #{self.sim_index}, "
            f"event #{self.event_index}",
            f"  run A: {self.event_a if self.event_a is not None else '<no event>'}",
            f"  run B: {self.event_b if self.event_b is not None else '<no event>'}",
        ]
        return "\n".join(lines)


@dataclasses.dataclass(slots=True)
class SanitizeReport:
    """Outcome of a sanitizer dual-run."""

    matched: bool
    simulators: int
    events: int
    run_digest: str
    divergence: Divergence | None = None
    notes: list[str] = dataclasses.field(default_factory=list)

    def summary(self) -> str:
        if self.matched:
            head = (
                f"sanitizer: OK — {self.simulators} simulator(s), "
                f"{self.events} events, trace {self.run_digest}"
            )
        else:
            head = (
                f"sanitizer: NONDETERMINISM DETECTED — {self.simulators} "
                f"simulator(s), {self.events} events in run A"
            )
        parts = [head]
        if self.divergence is not None:
            parts.append(str(self.divergence))
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


def _traced_run(
    experiment: Callable[[], Any],
    run_index: int,
    *,
    quiet: bool,
    keep_events: bool,
    event_limit: int | None,
) -> TraceCollector:
    # Live ballast perturbs the allocator so id()-derived orderings differ
    # between runs; it must stay referenced until the run completes.
    ballast = [object() for _ in range(run_index * _BALLAST_STRIDE + 1)]
    sink = io.StringIO() if quiet else None
    with capture_traces(keep_events=keep_events, event_limit=event_limit) as collector:
        if sink is not None:
            with contextlib.redirect_stdout(sink):
                experiment()
        else:
            experiment()
    del ballast
    return collector


def _divergence_window(a: EventTrace, b: EventTrace) -> int:
    """Upper bound (event count) bracketing the first divergence."""
    for index, (ca, cb) in enumerate(zip(a.checkpoints, b.checkpoints)):
        if ca != cb:
            return (index + 1) * TRACE_CHECKPOINT_INTERVAL + _WINDOW_SLACK
    # checkpoints agree over the shared prefix: the divergence is in the
    # tail past the last common checkpoint (or the counts differ).
    return min(a.count, b.count) + _WINDOW_SLACK


def _first_hash_mismatch(
    a: TraceCollector, b: TraceCollector
) -> tuple[int, int] | None:
    """(sim_index, capture_window) of the first differing trace, or None."""
    for sim_index, (ta, tb) in enumerate(zip(a.traces, b.traces)):
        if ta.count != tb.count or ta.digest() != tb.digest():
            return sim_index, _divergence_window(ta, tb)
    return None


def _locate_divergence(a: TraceCollector, b: TraceCollector) -> Divergence | None:
    """First divergent event across the localisation pass's recorded traces."""
    for sim_index, (ta, tb) in enumerate(zip(a.traces, b.traces)):
        shared = min(ta.recorded, tb.recorded)
        for event_index in range(shared):
            if ta.event_digest(event_index) != tb.event_digest(event_index):
                return Divergence(
                    sim_index,
                    event_index,
                    ta.descriptions[event_index],
                    tb.descriptions[event_index],
                )
        if ta.count != tb.count:
            # one run has extra events; the first extra one is the divergence
            # when it falls inside the recorded window.
            shorter, longer = (ta, tb) if ta.count < tb.count else (tb, ta)
            if shorter.count < longer.recorded:
                extra = longer.descriptions[shorter.count]
                event_a = extra if longer is ta else None
                event_b = extra if longer is tb else None
                return Divergence(sim_index, shorter.count, event_a, event_b)
        if ta.digest() != tb.digest():
            # diverged past the capture window; detected but not localised
            return Divergence(sim_index, shared, None, None)
    if len(a.traces) != len(b.traces):
        shared_sims = min(len(a.traces), len(b.traces))
        return Divergence(shared_sims, 0, None, None)
    return None


def run_sanitized(experiment: Callable[[], Any], *, quiet: bool = True) -> SanitizeReport:
    """Execute ``experiment`` twice and compare full event traces.

    Pass 1 runs twice in O(1) trace memory (rolling hash + checkpoints).
    Only on mismatch does a localisation pass re-run the experiment with
    per-event capture bounded to the divergence window.

    ``quiet`` redirects the experiment's stdout into the void so the
    sanitizer's verdict is the only output.
    """
    run_a = _traced_run(experiment, 0, quiet=quiet, keep_events=False, event_limit=None)
    run_b = _traced_run(experiment, 1, quiet=quiet, keep_events=False, event_limit=None)

    report = SanitizeReport(
        matched=True,
        simulators=len(run_a.traces),
        events=run_a.total_events,
        run_digest=run_a.combined_hexdigest(),
    )
    if len(run_a.traces) != len(run_b.traces):
        report.matched = False
        report.divergence = Divergence(min(len(run_a.traces), len(run_b.traces)), 0, None, None)
        report.notes.append(
            f"runs constructed a different number of simulators "
            f"({len(run_a.traces)} vs {len(run_b.traces)})"
        )
        return report

    mismatch = _first_hash_mismatch(run_a, run_b)
    if mismatch is None:
        return report

    report.matched = False
    _, window = mismatch
    run_a2 = _traced_run(experiment, 2, quiet=quiet, keep_events=True, event_limit=window)
    run_b2 = _traced_run(experiment, 3, quiet=quiet, keep_events=True, event_limit=window)
    divergence = _locate_divergence(run_a2, run_b2)
    if divergence is None:
        report.notes.append(
            "trace hashes differ but the localisation pass did not reproduce "
            "the divergence (unstable nondeterminism); re-run to bracket it"
        )
        return report
    report.divergence = divergence
    if divergence.event_a is None and divergence.event_b is None:
        report.notes.append(
            "divergence detected past the capture window; event description "
            "unavailable"
        )
    return report
