"""The declared TCP state machine the implementation must conform to.

This is the *model* side of the S-rules: :mod:`.fsm` extracts the actual
transition relation from the implementation's AST and checks it against
this spec.  Transitions name the method whose body lexically performs the
state assignment (``event``); ``"*"`` is a wildcard source matching any
state (teardown is legal from everywhere).

``isn_checked`` edges carry the paper's §III.C security argument: a
completed handshake proves the requester's address because the peer must
echo the initial sequence number.  The label is **verified, not trusted**
— :func:`.fsm.check_isn_paths` demands an ISN comparison dominating every
call path into the transition's code site, and the small-model walk then
proves every spec path into ESTABLISHED crosses a *verified* ISN edge.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class Transition:
    """One declared edge: ``src --event--> dst``."""

    src: str
    dst: str
    event: str
    isn_checked: bool = False


@dataclasses.dataclass(frozen=True, slots=True)
class FsmSpec:
    """A small protocol model: states, edges, and liveness obligations."""

    name: str
    states: frozenset[str]
    initial: frozenset[str]
    accepting: str
    transitions: tuple[Transition, ...]
    #: States that MUST have a retransmit escape in the retry handler and
    #: an abort path bounded by the retransmission budget — a peer that
    #: goes silent must cost bounded time, never a stuck connection.
    retry_states: frozenset[str] = frozenset()
    #: States declared in the protocol but deliberately not represented as
    #: per-connection state (e.g. TIME_WAIT lives in the stack's tombstone
    #: table); excluded from reachability checking.
    virtual_states: frozenset[str] = frozenset()

    def edges_from(self, state: str) -> list[Transition]:
        return [
            t for t in self.transitions if t.src == state or t.src == "*"
        ]


#: The spec for ``repro.netsim.tcp``.  Event names are the methods of
#: ``TcpConnection`` (and ``TcpStack`` for the stateless SYN-cookie path)
#: that lexically assign ``self.state``.
TCP_SPEC = FsmSpec(
    name="repro.netsim.tcp",
    states=frozenset(
        {
            "CLOSED",
            "LISTEN",
            "SYN_SENT",
            "SYN_RCVD",
            "ESTABLISHED",
            "FIN_WAIT_1",
            "FIN_WAIT_2",
            "CLOSE_WAIT",
            "LAST_ACK",
            "TIME_WAIT",
        }
    ),
    initial=frozenset({"CLOSED", "LISTEN"}),
    accepting="ESTABLISHED",
    transitions=(
        # connection setup
        Transition("CLOSED", "SYN_SENT", "_start_active"),
        Transition("LISTEN", "SYN_RCVD", "_start_passive"),
        # every way into ESTABLISHED funnels through _established(), and
        # every call path into it must be dominated by an ISN echo check:
        # the client's SYN-ACK validation, the server's final-ACK
        # validation, and the stateless SYN-cookie validation in demux
        Transition("SYN_SENT", "ESTABLISHED", "_established", isn_checked=True),
        Transition("SYN_RCVD", "ESTABLISHED", "_established", isn_checked=True),
        Transition("LISTEN", "ESTABLISHED", "_established", isn_checked=True),
        # close paths
        Transition("ESTABLISHED", "FIN_WAIT_1", "_pump"),
        Transition("CLOSE_WAIT", "LAST_ACK", "_pump"),
        Transition("ESTABLISHED", "CLOSE_WAIT", "handle"),
        Transition("FIN_WAIT_1", "FIN_WAIT_2", "_process_ack"),
        # teardown is legal from any state (RST, abort, retry exhaustion,
        # FIN completion); _teardown owns the single lexical assignment
        Transition("*", "CLOSED", "_teardown"),
    ),
    retry_states=frozenset(
        {"SYN_SENT", "SYN_RCVD", "ESTABLISHED", "FIN_WAIT_1", "LAST_ACK"}
    ),
    virtual_states=frozenset({"TIME_WAIT", "LISTEN"}),
)
