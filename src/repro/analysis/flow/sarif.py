"""SARIF 2.1.0 export so CI code scanning can ingest the findings.

Only the stdlib ``json``-serialisable subset of SARIF is produced: one run,
one driver, a rule table, and one result per finding with a physical
location.  :func:`results_from_sarif` is the inverse for the subset we
emit — used by the round-trip tests and by tooling that wants to diff two
SARIF files structurally.
"""

from __future__ import annotations

from pathlib import PurePath
from typing import Iterable

from ..findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_TOOL_NAME = "repro-analysis"
_TOOL_URI = "https://example.invalid/repro/analysis"  # repo-internal tool


def _rule_meta() -> dict[str, tuple[str, str, str]]:
    """id -> (summary, rationale, severity) across all engines."""
    from ..engine import SYNTAX_ERROR_RULE
    from ..memory.engine import MEMORY_RULES
    from ..perf.engine import PERF_RULES
    from ..races.engine import RACE_RULES
    from ..rules import RULES
    from .engine import FLOW_RULES

    meta: dict[str, tuple[str, str, str]] = {}
    for registry in (RULES, FLOW_RULES, RACE_RULES, PERF_RULES, MEMORY_RULES):
        for rule_id in sorted(registry):
            rule = registry[rule_id]
            meta[rule_id] = (
                rule.summary,
                rule.rationale,
                getattr(rule, "severity", "error"),
            )
    meta.setdefault(
        SYNTAX_ERROR_RULE,
        ("file fails to parse", "nothing can be checked in unparsable code", "error"),
    )
    return meta


def to_sarif(findings: Iterable[Finding], *, tool_version: str = "0") -> dict:
    """A SARIF 2.1.0 document (as a plain dict) for ``findings``."""
    findings = list(findings)
    meta = _rule_meta()
    # stable rule table: every finding's rule, plus all registered rules so
    # the document is self-describing even on a clean run
    rule_ids = sorted(set(meta) | {f.rule for f in findings})
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = []
    for rule_id in rule_ids:
        summary, rationale, severity = meta.get(rule_id, (rule_id, "", "error"))
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": summary},
                "fullDescription": {"text": rationale},
                "defaultConfiguration": {"level": severity},
            }
        )
    results = []
    for finding in findings:
        severity = meta.get(finding.rule, ("", "", "error"))[2]
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": severity,
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": PurePath(finding.path).as_posix(),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": max(finding.col, 0) + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def results_from_sarif(document: dict) -> list[Finding]:
    """Reconstruct :class:`Finding` objects from a document we emitted."""
    findings: list[Finding] = []
    for run in document.get("runs", []):
        for result in run.get("results", []):
            location = result["locations"][0]["physicalLocation"]
            region = location.get("region", {})
            findings.append(
                Finding(
                    path=location["artifactLocation"]["uri"],
                    line=int(region.get("startLine", 1)),
                    col=int(region.get("startColumn", 1)) - 1,
                    rule=str(result.get("ruleId", "")),
                    message=str(result.get("message", {}).get("text", "")),
                )
            )
    return sorted(findings, key=Finding.sort_key)
