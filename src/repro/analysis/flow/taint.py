"""T-rules: taint findings over the dataflow core.

* **T001** — a guard admission sink reached with attacker-tainted data, or
  under attacker-tainted control, with no registered sanitizer dominating
  the program point.  This is the paper's §III invariant: nothing an
  off-path attacker forges may influence admission except through the
  cookie check.
* **T002** — cookie key material (``SEC``) flowing into an exposure sink:
  logs, ``print``, ``__repr__``/``__str__`` output, or the observability
  exporters.  Keys leave the process only via :meth:`export_state`
  persistence, never via telemetry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .core import (
    ATT,
    FunctionSummary,
    ModuleInfo,
    NameIndex,
    SinkEvent,
    TaintWalker,
)


def _location(module: ModuleInfo, node: ast.AST, rule: str, message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
    )


def _check_events(
    module: ModuleInfo,
    summaries: dict[tuple[str, str], FunctionSummary],
    index: NameIndex,
) -> Iterator[tuple[str, SinkEvent]]:
    """Run the check-mode walker over every function; yield (qualname, event)."""
    for decl in module.functions.values():
        walker = TaintWalker(module, decl, summaries, index, "check")
        walker.run()
        for event in walker.events:
            yield decl.qualname, event


def check_taint(
    modules: list[ModuleInfo],
    summaries: dict[tuple[str, str], FunctionSummary],
    index: NameIndex,
    *,
    rules: frozenset[str] = frozenset({"T001", "T002"}),
) -> list[Finding]:
    """All T-rule findings across ``modules``."""
    findings: list[Finding] = []
    for module in modules:
        trust = module.trust
        for qualname, event in _check_events(module, summaries, index):
            if event.kind == "exposure" and "T002" in rules:
                findings.append(
                    _location(
                        module,
                        event.node,
                        "T002",
                        f"cookie-key secret reaches exposure sink "
                        f"{event.sink!r} in {qualname}() — key material must "
                        "never flow into logs, reprs, or obs exporters",
                    )
                )
                continue
            if event.kind != "admission" or "T001" not in rules:
                continue
            # T001 is judged only at trust-boundary entry points: helper
            # bodies are covered through call summaries at those entries
            if not trust.is_entry_point(qualname):
                continue
            if event.sanitized:
                continue
            data_dep = ATT in event.data_tags
            ctrl_dep = ATT in event.ctx_tags
            if not (data_dep or ctrl_dep):
                continue
            dependence = (
                "data-dependent"
                if data_dep and not ctrl_dep
                else "control-dependent"
                if ctrl_dep and not data_dep
                else "data- and control-dependent"
            )
            scheme = f" [{trust.scheme}]" if trust.scheme else ""
            via = " (via call summary)" if event.via_summary else ""
            findings.append(
                _location(
                    module,
                    event.node,
                    "T001",
                    f"admission sink {event.sink!r} in {qualname}(){scheme} is "
                    f"{dependence} on attacker-controlled input with no "
                    f"registered sanitizer dominating it{via} — route the "
                    "decision through a cookie verify / SYN-cookie validate / "
                    "ISN check, or suppress with a rationale",
                )
            )
    # the same call node can surface twice (direct sink + call summary);
    # one finding per (location, rule) is enough — keep the direct one
    unique: dict[tuple[str, int, int, str], Finding] = {}
    for finding in findings:
        unique.setdefault(
            (finding.path, finding.line, finding.col, finding.rule), finding
        )
    return list(unique.values())
