"""Taint dataflow + protocol-FSM conformance checking.

The AST lint (D/W rules) catches syntactic hazards; this package checks
*dataflow* facts — the properties the paper's §III security argument
actually rests on:

* **T-rules** (:mod:`.taint`) — T001: no guard admission may depend on an
  attacker-controlled packet field unless a registered sanitizer (cookie
  verify, SYN-cookie validate, ISN echo check) dominates it; T002: cookie
  key material must never flow into logs, ``__repr__`` output, or obs
  exporters.  Guard schemes self-describe their trust boundary with a
  module-level ``__trust_boundary__`` literal (:mod:`.trust`).
* **S-rules** (:mod:`.fsm`) — the TCP transition relation is extracted
  statically from the implementation and checked against the declared FSM
  spec (:mod:`.fsm_spec`): undeclared/unimplemented transitions,
  unreachable states, missing retransmit/abort escapes, segment handling
  before SYN-cookie validation, and an exhaustive small-model walk proving
  every path to ESTABLISHED crosses the ISN check.
* :mod:`.sarif` — SARIF 2.1.0 export for CI code scanning.
* :mod:`.baseline` — checked-in accepted-findings baseline.

Everything is stdlib-``ast`` static analysis: no analysed module is ever
imported or executed.
"""

from .core import FunctionSummary, ModuleInfo, build_summaries, load_modules
from .engine import FLOW_RULES, FlowRule, analyze_paths, flow_rule_table
from .fsm import extract_fsm
from .sarif import to_sarif
from .trust import DEFAULT_TRUST, TrustModel, trust_for_module

__all__ = [
    "DEFAULT_TRUST",
    "FLOW_RULES",
    "FlowRule",
    "FunctionSummary",
    "ModuleInfo",
    "TrustModel",
    "analyze_paths",
    "build_summaries",
    "extract_fsm",
    "flow_rule_table",
    "load_modules",
    "to_sarif",
    "trust_for_module",
]
