"""Flow-rule registry and the orchestration entry point.

:func:`analyze_paths` is the flow-analysis sibling of
:func:`repro.analysis.engine.lint_paths`: it loads the modules once, builds
call summaries to a fixpoint, runs the T-rules over every function and the
S-rules over every module a spec targets, and filters the result through
the same inline-suppression syntax the lint uses (``# repro: allow[T001]``),
optionally recording marker usage in a
:class:`repro.analysis.engine.SuppressionTracker` for U001.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from ..findings import Finding
from .core import ModuleInfo, NameIndex, build_summaries, load_modules
from .fsm import (
    check_conformance,
    check_isn_paths,
    check_model_walk,
    check_reachability,
    check_retry_escapes,
    check_syn_cookie_order,
    extract_fsm,
)
from .fsm_spec import TCP_SPEC, FsmSpec
from .taint import check_taint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import SuppressionTracker


@dataclasses.dataclass(frozen=True, slots=True)
class FlowRule:
    """Registry metadata for one flow rule (the checks live elsewhere)."""

    id: str
    summary: str
    rationale: str
    family: str  # "taint" | "fsm"


FLOW_RULES: dict[str, FlowRule] = {
    rule.id: rule
    for rule in (
        FlowRule(
            "T001",
            "guard admission depends on attacker-controlled input without "
            "a dominating sanitizer",
            "the paper's §III invariant: forged packet fields may influence "
            "admission only through the cookie verify / SYN-cookie validate "
            "/ ISN echo check",
            "taint",
        ),
        FlowRule(
            "T002",
            "cookie key material flows into a log, repr, or obs exporter",
            "spoof detection is exactly as strong as key secrecy; keys "
            "leave the process only via explicit state export",
            "taint",
        ),
        FlowRule(
            "S001",
            "implemented state transition not declared in the FSM spec",
            "an undeclared edge bypasses the spec's security obligations "
            "(ISN checks, retry budgets) without review",
            "fsm",
        ),
        FlowRule(
            "S002",
            "declared state transition has no implementation",
            "a lost edge silently drops protocol behaviour the paper's "
            "handshake argument relies on",
            "fsm",
        ),
        FlowRule(
            "S003",
            "spec state unreachable from the initial states",
            "dead states hide missing transitions and rot the model the "
            "security argument is checked against",
            "fsm",
        ),
        FlowRule(
            "S004",
            "a spec path reaches ESTABLISHED without crossing a verified "
            "ISN-checked edge",
            "the exhaustive small-model walk: every way to complete the "
            "handshake must prove the peer echoed the server's ISN",
            "fsm",
        ),
        FlowRule(
            "S005",
            "an ISN-checked edge is reachable through a call path with no "
            "dominating ISN comparison",
            "the spec label is verified against the code, not trusted: a "
            "declared check that is not actually performed is the exact "
            "bug class spoof detection exists to prevent",
            "fsm",
        ),
        FlowRule(
            "S006",
            "retry-obligated state lacks a retransmit escape or the abort "
            "path is not budget-bounded",
            "a silent peer must cost bounded retransmissions and bounded "
            "time — otherwise the guard itself becomes a DoS amplifier",
            "fsm",
        ),
        FlowRule(
            "S007",
            "segment processed in the SYN-cookie path before the cookie "
            "ISN is validated",
            "stateless SYN-cookie handling is only sound if nothing "
            "connection-shaped happens before the cookie round-trips",
            "fsm",
        ),
    )
}

_TAINT_RULES = frozenset(r for r, m in FLOW_RULES.items() if m.family == "taint")
_FSM_RULES = frozenset(r for r, m in FLOW_RULES.items() if m.family == "fsm")

#: Path suffix -> the FSM spec that module must conform to.
_SPEC_TARGETS: tuple[tuple[str, FsmSpec], ...] = (
    (str(Path("netsim") / "tcp.py"), TCP_SPEC),
)


def _spec_for(path: str) -> FsmSpec | None:
    for suffix, spec in _SPEC_TARGETS:
        if path.endswith(suffix):
            return spec
    return None


def _select(rule_ids: Iterable[str] | None) -> frozenset[str]:
    if rule_ids is None:
        return frozenset(FLOW_RULES)
    selected = frozenset(rule_ids)
    unknown = sorted(selected - set(FLOW_RULES))
    if unknown:
        raise KeyError(f"unknown flow rule ids: {', '.join(unknown)}")
    return selected


def _fsm_findings(
    module: ModuleInfo, spec: FsmSpec, selected: frozenset[str]
) -> list[Finding]:
    findings: list[Finding] = []
    extraction = extract_fsm(module.tree, module.path)
    if extraction is None:
        if "S002" in selected:
            findings.append(
                Finding(
                    path=module.path,
                    line=1,
                    col=0,
                    rule="S002",
                    message=(
                        f"expected the {spec.name} state machine here but "
                        "no state-enum assignments were found"
                    ),
                )
            )
        return findings
    if selected & {"S001", "S002"}:
        for finding in check_conformance(extraction, spec):
            if finding.rule in selected:
                findings.append(finding)
    if "S003" in selected:
        findings.extend(check_reachability(extraction, spec))
    if selected & {"S004", "S005"}:
        s005, verified = check_isn_paths(extraction, spec)
        if "S005" in selected:
            findings.extend(s005)
        if "S004" in selected:
            findings.extend(check_model_walk(extraction, spec, verified))
    if "S006" in selected:
        findings.extend(check_retry_escapes(extraction, spec))
    if "S007" in selected:
        findings.extend(check_syn_cookie_order(extraction))
    return findings


def analyze_paths(
    paths: Iterable[str | Path],
    *,
    rule_ids: Iterable[str] | None = None,
    tracker: "SuppressionTracker | None" = None,
    modules: list[ModuleInfo] | None = None,
) -> list[Finding]:
    """Run the selected flow rules over every Python file under ``paths``.

    ``modules`` reuses an already-parsed module set — the CLI parses each
    file exactly once and shares the ASTs across every rule family.

    Inline ``# repro: allow[...]`` markers filter findings exactly as they
    do for the lint; with a ``tracker``, marker usage is recorded so the
    caller can emit U001 for markers that suppressed nothing.
    """
    from ..engine import suppressed_rules

    selected = _select(rule_ids)
    if modules is None:
        modules = load_modules(paths)
    index = NameIndex(modules)
    findings: list[Finding] = []

    taint_selected = selected & _TAINT_RULES
    if taint_selected:
        summaries = build_summaries(modules, index)
        findings.extend(
            check_taint(modules, summaries, index, rules=taint_selected)
        )

    if selected & _FSM_RULES:
        for module in modules:
            spec = _spec_for(module.path)
            if spec is not None:
                findings.extend(_fsm_findings(module, spec, selected))

    if tracker is not None:
        tracker.note_rules(selected)
        for module in modules:
            tracker.register_source(module.path, module.source)
        kept = [f for f in findings if not tracker.is_suppressed(f)]
    else:
        allowed_by_path = {
            module.path: suppressed_rules(module.source) for module in modules
        }
        kept = [
            f
            for f in findings
            if f.rule not in allowed_by_path.get(f.path, {}).get(f.line, ())
        ]
    return sorted(kept, key=Finding.sort_key)


def flow_rule_table() -> str:
    """Plain-text rule table matching the lint CLI's ``--list-rules`` style."""
    lines = ["rule   summary", "-----  -------"]
    for rule_id in sorted(FLOW_RULES):
        rule = FLOW_RULES[rule_id]
        lines.append(f"{rule_id:<6} {rule.summary}")
        lines.append(f"       why: {rule.rationale}")
    return "\n".join(lines)
