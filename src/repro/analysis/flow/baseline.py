"""Checked-in findings baseline: accepted debt, tracked and self-cleaning.

A baseline file is a JSON list of entries, each identifying one accepted
finding by ``(path, rule, message)`` — deliberately *not* by line number,
so unrelated edits do not churn the file.  Applying a baseline:

* drops findings the baseline accepts, and
* reports every baseline entry that matched nothing as a **U001** finding
  (stale accepted debt must be deleted, for the same reason unused inline
  suppressions must be) — the baseline can only shrink, never silently
  rot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..findings import Finding

_KEY_FIELDS = ("path", "rule", "message")


def baseline_entry(finding: Finding) -> dict[str, str]:
    """The baseline representation of one finding."""
    return {
        "path": Path(finding.path).as_posix(),
        "rule": finding.rule,
        "message": finding.message,
    }


def _key(entry: dict) -> tuple[str, str, str]:
    return tuple(str(entry.get(field, "")) for field in _KEY_FIELDS)  # type: ignore[return-value]


def load_baseline(path: str | Path) -> list[dict]:
    """Parse a baseline file; raises ValueError on a malformed document."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(raw, dict):
        raw = raw.get("findings", [])
    if not isinstance(raw, list) or not all(isinstance(e, dict) for e in raw):
        raise ValueError(f"baseline {path}: expected a JSON list of objects")
    return raw


def apply_baseline(
    findings: Iterable[Finding], entries: list[dict], *, baseline_path: str
) -> list[Finding]:
    """Findings minus accepted entries, plus U001 for stale entries."""
    entries_by_key: dict[tuple[str, str, str], dict] = {
        _key(entry): entry for entry in entries
    }
    matched: set[tuple[str, str, str]] = set()
    kept: list[Finding] = []
    for finding in findings:
        key = _key(baseline_entry(finding))
        if key in entries_by_key:
            matched.add(key)
        else:
            kept.append(finding)
    for key, entry in entries_by_key.items():
        if key in matched:
            continue
        kept.append(
            Finding(
                path=baseline_path,
                line=1,
                col=0,
                rule="U001",
                message=(
                    f"stale baseline entry: {entry.get('rule', '?')} at "
                    f"{entry.get('path', '?')} no longer fires — delete it"
                ),
            )
        )
    return sorted(kept, key=Finding.sort_key)
