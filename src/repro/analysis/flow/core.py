"""The dataflow core: a fixpoint taint walker with call summaries.

Three taint tags flow through a finite union lattice:

* ``ATT`` — attacker-controlled (packet fields at trust-boundary entry
  points, and anything computed from them);
* ``SAN`` — sanitizer evidence (the result of a registered cookie verify /
  SYN-cookie validate / ISN check, or a value read off a registered
  evidence attribute);
* ``SEC`` — key-material secrets;
* ``("param", name)`` — symbolic taint used while building a function's
  *summary*: which parameters reach its return value, and which reach a
  sink.  Summaries let taint cross call (and module) boundaries without a
  whole-program supergraph.

The walker is intraprocedural and flow-sensitive: statements are processed
in order, loop bodies are iterated to a fixpoint (the lattice is finite
and joins are unions, so iteration terminates), and branch contexts track

* *control taint* — tags mentioned by enclosing tests, including the
  negated condition after an early-return ``if`` (the guard idiom
  ``if not verify(...): return``), and
* *sanitized* — whether a registered sanitizer dominates the current
  program point, with polarity (``verify()`` sanitizes its true branch;
  ``not verify()`` sanitizes the code after its terminating body).

Sinks are not judged here: the walker records :class:`SinkEvent` facts and
the T-rules in :mod:`.taint` turn them into findings.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable

from ..rules import dotted_name
from .trust import TrustModel, trust_for_module

#: The three concrete taint tags (param tags are ``("param", name)``).
ATT = "ATT"
SAN = "SAN"
SEC = "SEC"

Tags = frozenset
EMPTY: Tags = frozenset()

#: Loop-body fixpoint ceiling; the union lattice stabilises far sooner.
_MAX_LOOP_PASSES = 6

#: Summary-propagation passes across the call graph (chains are shallow).
_SUMMARY_PASSES = 3


def _param_tags(tags: Tags) -> frozenset[str]:
    return frozenset(t[1] for t in tags if isinstance(t, tuple) and t[0] == "param")


@dataclasses.dataclass(slots=True)
class FunctionDecl:
    """One function/method as the analyser sees it."""

    qualname: str  # "Class.method" or bare "function"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[str]


@dataclasses.dataclass(slots=True)
class ModuleInfo:
    """A parsed module plus its merged trust model."""

    path: str
    tree: ast.Module
    trust: TrustModel
    functions: dict[str, FunctionDecl]
    source: str = ""

    def function_named(self, name: str) -> FunctionDecl | None:
        """Resolve a bare callee name inside this module: prefer a
        module-level function, else a unique method of any class."""
        decl = self.functions.get(name)
        if decl is not None:
            return decl
        matches = [
            d for q, d in self.functions.items() if q.endswith("." + name)
        ]
        return matches[0] if len(matches) == 1 else None


@dataclasses.dataclass(slots=True)
class FunctionSummary:
    """What a call to this function does with its arguments."""

    returns_taint_of: frozenset[str] = EMPTY  # param names flowing to return
    params_to_sink: frozenset[str] = EMPTY  # param names reaching a sink
    sink_names: frozenset[str] = EMPTY  # the sinks those params reach


@dataclasses.dataclass(slots=True)
class SinkEvent:
    """A sink call observed with the taint facts holding at that point."""

    node: ast.AST
    sink: str
    kind: str  # "admission" | "exposure"
    data_tags: Tags
    ctx_tags: Tags
    sanitized: bool
    function: str
    via_summary: bool = False


def load_modules(paths: Iterable[str | Path]) -> list[ModuleInfo]:
    """Parse every Python file under ``paths`` into :class:`ModuleInfo`.

    Files that fail to parse are skipped here — the AST lint already
    reports them as E999.
    """
    from ..engine import iter_python_files

    modules: list[ModuleInfo] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8", errors="replace")
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError:
            continue
        modules.append(
            ModuleInfo(
                path=str(file_path),
                tree=tree,
                trust=trust_for_module(tree),
                functions=_collect_functions(tree),
                source=source,
            )
        )
    return modules


def _collect_functions(tree: ast.Module) -> dict[str, FunctionDecl]:
    functions: dict[str, FunctionDecl] = {}

    def add(node: ast.FunctionDef | ast.AsyncFunctionDef, prefix: str) -> None:
        qualname = f"{prefix}.{node.name}" if prefix else node.name
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        functions.setdefault(qualname, FunctionDecl(qualname, node, params))

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(stmt, "")
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add(sub, stmt.name)
    return functions


class NameIndex:
    """Cross-module callee resolution by bare name (unique matches only)."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules = modules
        self._by_name: dict[str, list[tuple[ModuleInfo, FunctionDecl]]] = {}
        for module in modules:
            for qualname, decl in module.functions.items():
                bare = qualname.rsplit(".", 1)[-1]
                self._by_name.setdefault(bare, []).append((module, decl))

    def resolve(
        self, caller: ModuleInfo, callee: str
    ) -> tuple[ModuleInfo, FunctionDecl] | None:
        """Same module first; else a unique cross-module match."""
        bare = callee.rsplit(".", 1)[-1]
        local = caller.function_named(bare)
        if local is not None:
            return (caller, local)
        candidates = self._by_name.get(bare, [])
        foreign = [c for c in candidates if c[0] is not caller]
        return foreign[0] if len(foreign) == 1 else None


def _suffix_match(name: str, registry: frozenset[str]) -> str | None:
    """Match ``a.b.c`` against registered dotted suffixes (``c``, ``b.c``)."""
    if not name:
        return None
    parts = name.split(".")
    for depth in range(1, len(parts) + 1):
        suffix = ".".join(parts[-depth:])
        if suffix in registry:
            return suffix
    return None


def _call_name(node: ast.Call) -> str:
    """The call's dotted name with a leading ``self.``/``cls.`` stripped."""
    name = dotted_name(node.func) or ""
    for prefix in ("self.", "cls."):
        if name.startswith(prefix):
            return name[len(prefix):]
    return name


@dataclasses.dataclass(slots=True)
class _Ctx:
    """Branch context: accumulated control taint + sanitizer dominance."""

    tags: Tags = EMPTY
    sanitized: bool = False

    def enter(self, tags: Tags, sanitized: bool) -> "_Ctx":
        return _Ctx(self.tags | (tags - {SAN}), self.sanitized or sanitized)


@dataclasses.dataclass(slots=True)
class _TestFacts:
    """What a branch condition tells us, with polarity."""

    tags: Tags
    san_true: bool  # condition true  => sanitizer passed
    san_false: bool  # condition false => sanitizer passed


class TaintWalker:
    """Runs one function; ``mode`` is ``"summary"`` or ``"check"``."""

    def __init__(
        self,
        module: ModuleInfo,
        decl: FunctionDecl,
        summaries: dict[tuple[str, str], FunctionSummary],
        index: NameIndex,
        mode: str,
    ):
        self.module = module
        self.trust = module.trust
        self.decl = decl
        self.summaries = summaries
        self.index = index
        self.mode = mode
        self.env: dict[str, Tags] = {}
        self.events: list[SinkEvent] = []
        self.return_tags: Tags = EMPTY
        if mode == "summary":
            for param in decl.params:
                self.env[param] = frozenset({("param", param)})
        else:
            for param in decl.params:
                if param in self.trust.taint_params:
                    self.env[param] = frozenset({ATT})

    # -- driving ---------------------------------------------------------------

    def run(self) -> None:
        self._block(self.decl.node.body, _Ctx())

    def summary(self) -> FunctionSummary:
        sink_params: set[str] = set()
        sink_names: set[str] = set()
        for event in self.events:
            reaching = _param_tags(event.data_tags | event.ctx_tags)
            if reaching and not event.sanitized:
                sink_params.update(reaching)
                sink_names.add(event.sink)
        return FunctionSummary(
            returns_taint_of=_param_tags(self.return_tags),
            params_to_sink=frozenset(sink_params),
            sink_names=frozenset(sink_names),
        )

    # -- statements -------------------------------------------------------------

    def _block(self, stmts: list[ast.stmt], ctx: _Ctx) -> None:
        i = 0
        while i < len(stmts):
            stmt = stmts[i]
            if isinstance(stmt, ast.If):
                facts = self._test(stmt.test)
                self._block(stmt.body, ctx.enter(facts.tags, facts.san_true))
                if stmt.orelse:
                    self._block(
                        stmt.orelse, ctx.enter(facts.tags, facts.san_false)
                    )
                # the guard idiom: `if <cond>: return` makes the remainder
                # control-dependent on `not <cond>` — including sanitizer
                # dominance when <cond> was `not verify(...)`
                body_ends = _terminates(stmt.body)
                else_ends = bool(stmt.orelse) and _terminates(stmt.orelse)
                if body_ends and not else_ends:
                    ctx = ctx.enter(facts.tags, facts.san_false)
                elif else_ends and not body_ends:
                    ctx = ctx.enter(facts.tags, facts.san_true)
                i += 1
                continue
            self._stmt(stmt, ctx)
            i += 1

    def _stmt(self, stmt: ast.stmt, ctx: _Ctx) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(stmt, "value", None)
            tags = self._expr(value, ctx) if value is not None else EMPTY
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                self._assign(target, tags, augment=isinstance(stmt, ast.AugAssign))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                tags = self._expr(stmt.value, ctx)
                self.return_tags |= tags
                if self.mode == "check" and SEC in tags and self.decl.qualname.endswith(
                    ("__repr__", "__str__")
                ):
                    self.events.append(
                        SinkEvent(
                            node=stmt,
                            sink=self.decl.qualname.rsplit(".", 1)[-1],
                            kind="exposure",
                            data_tags=tags,
                            ctx_tags=ctx.tags,
                            sanitized=False,
                            function=self.decl.qualname,
                        )
                    )
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value, ctx)
        elif isinstance(stmt, (ast.While,)):
            facts = self._test(stmt.test)
            self._loop(stmt.body, ctx.enter(facts.tags, facts.san_true))
            self._block(stmt.orelse, ctx)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tags = self._expr(stmt.iter, ctx)
            self._assign(stmt.target, iter_tags, augment=False)
            self._loop(stmt.body, ctx.enter(iter_tags, False))
            self._block(stmt.orelse, ctx)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self._expr(item.context_expr, ctx)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, tags, augment=False)
            self._block(stmt.body, ctx)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body, ctx)
            for handler in stmt.handlers:
                self._block(handler.body, ctx)
            self._block(stmt.orelse, ctx)
            self._block(stmt.finalbody, ctx)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested closures: walk their bodies in the enclosing env so
            # callback-style helpers (`def on_response(...)`) are covered
            self._block(stmt.body, ctx)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, ctx)
        elif isinstance(stmt, ast.Delete):
            pass
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing flows

    def _loop(self, body: list[ast.stmt], ctx: _Ctx) -> None:
        for _ in range(_MAX_LOOP_PASSES):
            before = dict(self.env)
            self._block(body, ctx)
            if self.env == before:
                break

    def _assign(self, target: ast.expr, tags: Tags, *, augment: bool) -> None:
        if isinstance(target, ast.Name):
            if augment:
                self.env[target.id] = self.env.get(target.id, EMPTY) | tags
            else:
                self.env[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, tags, augment=True)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, tags, augment=True)
        # attribute/subscript targets: field-insensitive, not tracked

    # -- conditions --------------------------------------------------------------

    def _test(self, test: ast.expr) -> _TestFacts:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = self._test(test.operand)
            return _TestFacts(inner.tags, inner.san_false, inner.san_true)
        if isinstance(test, ast.BoolOp):
            facts = [self._test(value) for value in test.values]
            tags = frozenset().union(*(f.tags for f in facts))
            if isinstance(test.op, ast.And):
                # all conjuncts true: any sanitizer among them ran and passed
                return _TestFacts(tags, any(f.san_true for f in facts), False)
            # Or true: optimistically credit a sanitizer disjunct (the
            # `not active or verify(...)` idiom); Or false: every disjunct
            # false, so a `not verify()` disjunct proves verification
            return _TestFacts(
                tags,
                any(f.san_true for f in facts),
                any(f.san_false for f in facts),
            )
        if isinstance(test, ast.Compare) and len(test.comparators) == 1:
            left_tags = self._expr(test.left, _Ctx())
            right_tags = self._expr(test.comparators[0], _Ctx())
            tags = left_tags | right_tags
            op = test.ops[0]
            is_none = isinstance(test.comparators[0], ast.Constant) and (
                test.comparators[0].value is None
            )
            if SAN in tags:
                if is_none and isinstance(op, ast.Is):
                    # `evidence is None` true means evidence ABSENT
                    return _TestFacts(tags, False, True)
                if is_none and isinstance(op, ast.IsNot):
                    return _TestFacts(tags, True, False)
                if isinstance(op, (ast.NotEq,)):
                    # `segment.ack != expected_isn` true means check FAILED
                    return _TestFacts(tags, False, True)
                return _TestFacts(tags, True, False)
            return _TestFacts(tags, False, False)
        tags = self._expr(test, _Ctx())
        return _TestFacts(tags, SAN in tags, False)

    # -- expressions -------------------------------------------------------------

    def _expr(self, node: ast.expr | None, ctx: _Ctx) -> Tags:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Attribute):
            tags = self._expr(node.value, ctx)
            if node.attr in self.trust.secret_attrs:
                tags |= {SEC}
            if node.attr in self.trust.sanitizer_attrs:
                tags |= {SAN}
            return tags
        if isinstance(node, ast.Call):
            return self._call(node, ctx)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, (ast.Lambda,)):
            self._block([ast.Return(value=node.body)], ctx)
            return EMPTY
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            tags: Tags = EMPTY
            for comp in node.generators:
                iter_tags = self._expr(comp.iter, ctx)
                self._assign(comp.target, iter_tags, augment=False)
                tags |= iter_tags
                for cond in comp.ifs:
                    tags |= self._expr(cond, ctx)
            if isinstance(node, ast.DictComp):
                tags |= self._expr(node.key, ctx) | self._expr(node.value, ctx)
            else:
                tags |= self._expr(node.elt, ctx)
            return tags
        # generic: union over expression children (BinOp, BoolOp, Compare,
        # Subscript, JoinedStr, Tuple, Dict, Starred, IfExp, ...)
        tags = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                tags |= self._expr(child, ctx)
        return tags

    def _call(self, node: ast.Call, ctx: _Ctx) -> Tags:
        name = _call_name(node)
        arg_exprs = list(node.args) + [kw.value for kw in node.keywords]
        arg_tags = [self._expr(arg, ctx) for arg in arg_exprs]
        all_args: Tags = frozenset().union(*arg_tags) if arg_tags else EMPTY

        # registered sanitizer: the result is trusted evidence
        if _suffix_match(name, self.trust.sanitizers):
            return frozenset({SAN})
        # declassifier: a keyed digest is sendable by design
        if _suffix_match(name, self.trust.declassifiers):
            return all_args - {SEC}
        # secret producer
        if _suffix_match(name, self.trust.secret_calls):
            return frozenset({SEC})

        self._record_sinks(node, name, arg_exprs, arg_tags, all_args, ctx)

        # summary propagation (cross-module via the name index)
        resolved = self.index.resolve(self.module, name) if name else None
        if resolved is not None:
            callee_module, callee_decl = resolved
            summary = self.summaries.get((callee_module.path, callee_decl.qualname))
            if summary is not None:
                self._apply_sink_summary(
                    node, callee_module, callee_decl, summary, arg_exprs, arg_tags, ctx
                )
                result: Tags = EMPTY
                positional = callee_decl.params
                offset = 1 if positional and positional[0] in ("self", "cls") else 0
                for i, tags in enumerate(arg_tags[: len(node.args)]):
                    if i + offset < len(positional) and (
                        positional[i + offset] in summary.returns_taint_of
                    ):
                        result |= tags
                return result
        # unknown callee: conservatively, taint flows through
        return all_args

    def _record_sinks(
        self,
        node: ast.Call,
        name: str,
        arg_exprs: list[ast.expr],
        arg_tags: list[Tags],
        all_args: Tags,
        ctx: _Ctx,
    ) -> None:
        sink = _suffix_match(name, self.trust.sinks)
        if sink is None:
            # the `submit(cost, fn, *args)` callback idiom: a sink passed
            # as an argument is a deferred sink call over the other args
            for i, arg in enumerate(arg_exprs):
                ref = dotted_name(arg)
                if ref is None:
                    continue
                for prefix in ("self.", "cls."):
                    if ref.startswith(prefix):
                        ref = ref[len(prefix):]
                matched = _suffix_match(ref, self.trust.sinks)
                if matched is not None:
                    sink = matched
                    all_args = frozenset().union(
                        *(t for j, t in enumerate(arg_tags) if j != i), EMPTY
                    )
                    break
        if sink is not None:
            self.events.append(
                SinkEvent(
                    node=node,
                    sink=sink,
                    kind="admission",
                    data_tags=all_args,
                    ctx_tags=ctx.tags,
                    sanitized=ctx.sanitized,
                    function=self.decl.qualname,
                )
            )
        exposure = _suffix_match(name, self.trust.exposure_sinks)
        if exposure is not None and SEC in all_args:
            self.events.append(
                SinkEvent(
                    node=node,
                    sink=exposure,
                    kind="exposure",
                    data_tags=all_args,
                    ctx_tags=ctx.tags,
                    sanitized=ctx.sanitized,
                    function=self.decl.qualname,
                )
            )

    def _apply_sink_summary(
        self,
        node: ast.Call,
        callee_module: ModuleInfo,
        callee_decl: FunctionDecl,
        summary: FunctionSummary,
        arg_exprs: list[ast.expr],
        arg_tags: list[Tags],
        ctx: _Ctx,
    ) -> None:
        if not summary.params_to_sink:
            return
        # an entry point's internal findings are reported (or suppressed)
        # at their true location when it is analysed itself — re-reporting
        # every call site would double-count
        if callee_module.trust.is_entry_point(callee_decl.qualname):
            return
        positional = callee_decl.params
        offset = 1 if positional and positional[0] in ("self", "cls") else 0
        reaching: Tags = EMPTY
        for i, tags in enumerate(arg_tags[: len(node.args)]):
            if i + offset < len(positional) and (
                positional[i + offset] in summary.params_to_sink
            ):
                reaching |= tags
        if not reaching:
            return
        sink = sorted(summary.sink_names)[0] if summary.sink_names else "<summary>"
        self.events.append(
            SinkEvent(
                node=node,
                sink=sink,
                kind="admission",
                data_tags=reaching,
                ctx_tags=ctx.tags,
                sanitized=ctx.sanitized,
                function=self.decl.qualname,
                via_summary=True,
            )
        )


def _terminates(stmts: list[ast.stmt]) -> bool:
    """Whether a block always leaves the enclosing statement list."""
    if not stmts:
        return False
    last = stmts[-1]
    if isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break)):
        return True
    if isinstance(last, ast.If):
        return bool(last.orelse) and _terminates(last.body) and _terminates(last.orelse)
    if isinstance(last, (ast.With, ast.AsyncWith)):
        return _terminates(last.body)
    return False


def build_summaries(
    modules: list[ModuleInfo], index: NameIndex | None = None
) -> dict[tuple[str, str], FunctionSummary]:
    """Fixpoint summaries for every function in ``modules``.

    Iterated ``_SUMMARY_PASSES`` times so taint-to-sink facts propagate
    through helper chains (``entry -> helper -> deeper helper -> sink``)
    and across module boundaries.
    """
    index = index if index is not None else NameIndex(modules)
    summaries: dict[tuple[str, str], FunctionSummary] = {}
    for _ in range(_SUMMARY_PASSES):
        changed = False
        for module in modules:
            for decl in module.functions.values():
                walker = TaintWalker(module, decl, summaries, index, "summary")
                walker.run()
                new = walker.summary()
                key = (module.path, decl.qualname)
                if summaries.get(key) != new:
                    summaries[key] = new
                    changed = True
        if not changed:
            break
    return summaries
