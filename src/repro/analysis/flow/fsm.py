"""S-rules: static FSM extraction and conformance against the declared spec.

The extractor walks a module's classes and records, with full branch
context (including the negated condition after an early-return ``if``):

* every ``self.state = <Enum>.<STATE>`` assignment — a transition, tagged
  with the guard states its enclosing conditions positively mention;
* every call site, so ISN-check dominance can be traced through helper
  methods (``_process -> _start_from_cookie -> _established``).

Checks (each one rule id):

* **S001** — transition implemented but not declared in the spec;
* **S002** — transition declared but not implemented;
* **S003** — spec state unreachable from the initial states;
* **S004** — a spec path into the accepting state that does not cross a
  *code-verified* ISN-checked edge (the exhaustive small-model walk);
* **S005** — an ``isn_checked`` edge whose implementation site is
  reachable through a call path with no dominating ISN comparison;
* **S006** — a retry-obligated state with no retransmit escape, or a
  retry handler with no budget-bounded abort;
* **S007** — a SYN-cookie region that creates or feeds a connection
  before the cookie ISN has been validated.
"""

from __future__ import annotations

import ast
import dataclasses
import itertools
from typing import Iterator

from ..findings import Finding
from ..rules import dotted_name
from .core import _terminates
from .fsm_spec import FsmSpec, Transition


@dataclasses.dataclass(frozen=True, slots=True)
class Condition:
    """One enclosing branch condition with the polarity that holds."""

    expr: ast.expr
    polarity: bool


@dataclasses.dataclass(slots=True)
class StateSet:
    """A ``self.state = Enum.STATE`` assignment in context."""

    method: str
    dst: str
    guards: frozenset[str]
    conditions: tuple[Condition, ...]
    lineno: int
    col: int


@dataclasses.dataclass(slots=True)
class CallSite:
    """A call in context, indexed by bare callee name."""

    method: str
    callee: str
    guards: frozenset[str]
    conditions: tuple[Condition, ...]
    lineno: int
    col: int


@dataclasses.dataclass(slots=True)
class FsmExtraction:
    """The transition relation and call graph lifted from one module."""

    path: str
    enum_name: str
    states: frozenset[str]
    state_sets: list[StateSet]
    call_sites: dict[str, list[CallSite]]  # bare callee name -> sites
    methods: dict[str, ast.FunctionDef]  # bare method name -> node


# -- extraction ----------------------------------------------------------------


def _find_state_enum(tree: ast.Module) -> tuple[str, frozenset[str]] | None:
    """The enum assigned to ``self.state``, and its member names."""
    enum_name: str | None = None
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and node.targets[0].attr == "state"
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
        ):
            enum_name = node.value.value.id
            break
    if enum_name is None:
        return None
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == enum_name:
            members = frozenset(
                target.id
                for stmt in node.body
                if isinstance(stmt, ast.Assign)
                for target in stmt.targets
                if isinstance(target, ast.Name)
            )
            return enum_name, members
    return None


def extract_fsm(tree: ast.Module, path: str) -> FsmExtraction | None:
    """Lift the transition relation from ``tree``; None if no FSM found."""
    found = _find_state_enum(tree)
    if found is None:
        return None
    enum_name, states = found
    extraction = FsmExtraction(
        path=path,
        enum_name=enum_name,
        states=states,
        state_sets=[],
        call_sites={},
        methods={},
    )
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for sub in node.body:
            if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            extraction.methods.setdefault(sub.name, sub)
            if sub.name == "__init__":
                continue  # initial-state declaration, not a transition
            _walk_method(extraction, sub, enum_name, states)
    return extraction


def _walk_method(
    extraction: FsmExtraction,
    method: ast.FunctionDef | ast.AsyncFunctionDef,
    enum_name: str,
    states: frozenset[str],
) -> None:
    def record(node: ast.AST, conds: tuple[Condition, ...]) -> None:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and node.targets[0].attr == "state"
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == enum_name
            and node.value.attr in states
        ):
            extraction.state_sets.append(
                StateSet(
                    method=method.name,
                    dst=node.value.attr,
                    guards=_guard_states(conds, enum_name, states),
                    conditions=conds,
                    lineno=node.lineno,
                    col=node.col_offset,
                )
            )
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name:
                bare = name.rsplit(".", 1)[-1]
                extraction.call_sites.setdefault(bare, []).append(
                    CallSite(
                        method=method.name,
                        callee=bare,
                        guards=_guard_states(conds, enum_name, states),
                        conditions=conds,
                        lineno=node.lineno,
                        col=node.col_offset,
                    )
                )

    def visit_expr(node: ast.expr, conds: tuple[Condition, ...]) -> None:
        for sub in ast.walk(node):
            record(sub, conds)

    def block(stmts: list[ast.stmt], conds: tuple[Condition, ...]) -> None:
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If):
                visit_expr(stmt.test, conds)
                block(stmt.body, conds + (Condition(stmt.test, True),))
                if stmt.orelse:
                    block(stmt.orelse, conds + (Condition(stmt.test, False),))
                body_ends = _terminates(stmt.body)
                else_ends = bool(stmt.orelse) and _terminates(stmt.orelse)
                if body_ends and not else_ends:
                    conds = conds + (Condition(stmt.test, False),)
                elif else_ends and not body_ends:
                    conds = conds + (Condition(stmt.test, True),)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                test = stmt.test if isinstance(stmt, ast.While) else stmt.iter
                visit_expr(test, conds)
                block(stmt.body, conds)
                block(stmt.orelse, conds)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    visit_expr(item.context_expr, conds)
                block(stmt.body, conds)
            elif isinstance(stmt, ast.Try):
                block(stmt.body, conds)
                for handler in stmt.handlers:
                    block(handler.body, conds)
                block(stmt.orelse, conds)
                block(stmt.finalbody, conds)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                block(stmt.body, conds)
            else:
                record(stmt, conds)
                for sub in ast.walk(stmt):
                    if sub is not stmt:
                        record(sub, conds)

    block(method.body, ())


def _guard_states(
    conds: tuple[Condition, ...], enum_name: str, states: frozenset[str]
) -> frozenset[str]:
    """States the conditions positively constrain ``self.state`` to."""
    guards: set[str] = set()
    for cond in conds:
        for node in ast.walk(cond.expr):
            if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
                continue
            op = node.ops[0]
            positive_op = isinstance(op, (ast.Is, ast.Eq, ast.In))
            negative_op = isinstance(op, (ast.IsNot, ast.NotEq, ast.NotIn))
            if not (positive_op or negative_op):
                continue
            effective = cond.polarity if positive_op else not cond.polarity
            if not effective:
                continue
            for operand in (node.left, node.comparators[0]):
                for sub in ast.walk(operand):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == enum_name
                        and sub.attr in states
                    ):
                        guards.add(sub.attr)
    return frozenset(guards)


# -- ISN / flag condition predicates -------------------------------------------


def _identifiers(node: ast.expr) -> set[str]:
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names


def _is_isn_compare(node: ast.Compare) -> bool:
    if len(node.ops) != 1 or not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
        return False
    sides = [_identifiers(node.left), _identifiers(node.comparators[0])]
    def mentions_ack(ids: set[str]) -> bool:
        return any("ack" in name.lower() for name in ids)
    def mentions_isn(ids: set[str]) -> bool:
        return any(
            "iss" in name.lower() or "isn" in name.lower() or "cookie" in name.lower()
            for name in ids
        )
    return (mentions_ack(sides[0]) and mentions_isn(sides[1])) or (
        mentions_ack(sides[1]) and mentions_isn(sides[0])
    )


def _test_has_isn(expr: ast.expr, polarity: bool) -> bool:
    """Whether holding ``expr == polarity`` implies an ISN check passed."""
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        return _test_has_isn(expr.operand, not polarity)
    if isinstance(expr, ast.BoolOp):
        if isinstance(expr.op, ast.And) and polarity:
            return any(_test_has_isn(v, True) for v in expr.values)
        if isinstance(expr.op, ast.Or) and not polarity:
            return any(_test_has_isn(v, False) for v in expr.values)
        return False
    if isinstance(expr, ast.Compare) and _is_isn_compare(expr):
        is_eq = isinstance(expr.ops[0], ast.Eq)
        return is_eq == polarity
    return False


def _isn_dominated(conds: tuple[Condition, ...]) -> bool:
    return any(_test_has_isn(c.expr, c.polarity) for c in conds)


def _mentions_flag(expr: ast.expr, flag: str, polarity: bool) -> bool:
    """Whether ``expr == polarity`` implies attribute ``flag`` is truthy."""
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        return _mentions_flag(expr.operand, flag, not polarity)
    if isinstance(expr, ast.BoolOp):
        if isinstance(expr.op, ast.And) and polarity:
            return any(_mentions_flag(v, flag, True) for v in expr.values)
        if isinstance(expr.op, ast.Or) and not polarity:
            return any(_mentions_flag(v, flag, False) for v in expr.values)
        return False
    if isinstance(expr, ast.Attribute) and expr.attr == flag:
        return polarity
    return False


# -- conformance checks ---------------------------------------------------------


def _finding(path: str, lineno: int, col: int, rule: str, message: str) -> Finding:
    return Finding(path=path, line=lineno, col=col, rule=rule, message=message)


def _matches(spec_t: Transition, state_set: StateSet) -> bool:
    if spec_t.dst != state_set.dst:
        return False
    if spec_t.event != "*" and spec_t.event != state_set.method:
        return False
    if spec_t.src == "*" or not state_set.guards:
        return True
    return spec_t.src in state_set.guards


def check_conformance(extraction: FsmExtraction, spec: FsmSpec) -> Iterator[Finding]:
    """S001 (undeclared) and S002 (unimplemented) transitions."""
    for state_set in extraction.state_sets:
        if not any(_matches(t, state_set) for t in spec.transitions):
            guards = ",".join(sorted(state_set.guards)) or "*"
            yield _finding(
                extraction.path,
                state_set.lineno,
                state_set.col,
                "S001",
                f"transition {{{guards}}} -> {state_set.dst} in "
                f"{state_set.method}() is not declared in the {spec.name} FSM "
                "spec — declare it (and its security obligations) or remove it",
            )
    for spec_t in spec.transitions:
        if not any(_matches(spec_t, s) for s in extraction.state_sets):
            yield _finding(
                extraction.path,
                1,
                0,
                "S002",
                f"declared transition {spec_t.src} -> {spec_t.dst} via "
                f"{spec_t.event}() has no implementation — the state machine "
                "lost an edge the spec (and the paper's protocol) requires",
            )


def check_reachability(extraction: FsmExtraction, spec: FsmSpec) -> Iterator[Finding]:
    """S003: spec states unreachable from the initial states."""
    reachable = set(spec.initial)
    frontier = list(spec.initial)
    while frontier:
        state = frontier.pop()
        for t in spec.edges_from(state):
            if t.dst not in reachable:
                reachable.add(t.dst)
                frontier.append(t.dst)
    for state in sorted(spec.states - spec.virtual_states - reachable):
        yield _finding(
            extraction.path,
            1,
            0,
            "S003",
            f"state {state} is unreachable from the initial states in the "
            f"{spec.name} FSM — dead protocol state or missing transition",
        )


def _site_isn_ok(
    extraction: FsmExtraction,
    site: CallSite,
    memo: dict[str, bool],
    in_progress: set[str],
) -> bool:
    if _isn_dominated(site.conditions):
        return True
    return _method_isn_ok(extraction, site.method, memo, in_progress)


def _method_isn_ok(
    extraction: FsmExtraction,
    method: str,
    memo: dict[str, bool],
    in_progress: set[str],
) -> bool:
    """True iff every call path into ``method`` crosses an ISN check."""
    if method in memo:
        return memo[method]
    if method in in_progress:
        return False  # cycle: cannot prove domination
    sites = extraction.call_sites.get(method, [])
    if not sites:
        memo[method] = False  # external entry: nothing dominates it
        return False
    in_progress.add(method)
    ok = all(_site_isn_ok(extraction, s, memo, in_progress) for s in sites)
    in_progress.discard(method)
    memo[method] = ok
    return ok


def check_isn_paths(
    extraction: FsmExtraction, spec: FsmSpec
) -> tuple[list[Finding], dict[Transition, bool]]:
    """S005 per unverified call path, plus the verified-label map for S004."""
    findings: list[Finding] = []
    verified: dict[Transition, bool] = {}
    isn_edges = [t for t in spec.transitions if t.isn_checked]
    memo: dict[str, bool] = {}
    for edge in isn_edges:
        verified[edge] = True
    for event in sorted({t.event for t in isn_edges}):
        sets = [s for s in extraction.state_sets if s.method == event]
        # the transition's code site(s): the lexical assignment, judged by
        # its own context or — when clean — by every call path leading in
        failing: list[tuple[StateSet | CallSite, frozenset[str]]] = []
        for state_set in sets:
            if _isn_dominated(state_set.conditions):
                continue
            sites = extraction.call_sites.get(event, [])
            if not sites:
                failing.append((state_set, state_set.guards))
                continue
            for site in sites:
                if not _site_isn_ok(extraction, site, memo, set()):
                    failing.append((site, site.guards))
        for offender, guards in failing:
            where = (
                f"call path via {offender.method}()"
                if isinstance(offender, CallSite)
                else f"assignment in {offender.method}()"
            )
            findings.append(
                _finding(
                    extraction.path,
                    offender.lineno,
                    offender.col,
                    "S005",
                    f"ISN-checked transition into "
                    f"{sets[0].dst if sets else event} is reachable through a "
                    f"{where} with no dominating ISN comparison — the "
                    "handshake no longer proves the peer's address",
                )
            )
            for edge in isn_edges:
                if edge.event == event and (not guards or edge.src in guards):
                    verified[edge] = False
        if not sets:
            # the event method no longer performs the transition at all;
            # S002 reports that — but the edges it claimed are unverified
            for edge in isn_edges:
                if edge.event == event:
                    verified[edge] = False
    return findings, verified


def check_model_walk(
    extraction: FsmExtraction,
    spec: FsmSpec,
    verified: dict[Transition, bool],
    *,
    max_reports: int = 10,
) -> Iterator[Finding]:
    """S004: exhaustively walk the spec; every simple path from an initial
    state into the accepting state must cross a code-verified ISN edge."""
    concrete_states = sorted(spec.states - spec.virtual_states | spec.initial)
    edges: list[tuple[str, str, Transition]] = []
    for t in spec.transitions:
        sources = concrete_states if t.src == "*" else [t.src]
        for src in sources:
            edges.append((src, t.dst, t))
    bad_paths: list[list[tuple[str, str, Transition]]] = []

    def dfs(state: str, path: list[tuple[str, str, Transition]], seen: frozenset[str]) -> None:
        if state == spec.accepting:
            if not any(verified.get(t, False) and t.isn_checked for _, _, t in path):
                bad_paths.append(list(path))
            return
        for src, dst, t in edges:
            if src == state and dst not in seen:
                path.append((src, dst, t))
                dfs(dst, path, seen | {dst})
                path.pop()

    for initial in sorted(spec.initial):
        dfs(initial, [], frozenset({initial}))
    anchor = next(
        (s for s in extraction.state_sets if s.dst == spec.accepting), None
    )
    lineno = anchor.lineno if anchor else 1
    col = anchor.col if anchor else 0
    for path in itertools.islice(bad_paths, max_reports):
        rendered = " -> ".join([path[0][0]] + [dst for _, dst, _ in path])
        yield _finding(
            extraction.path,
            lineno,
            col,
            "S004",
            f"model walk: path {rendered} reaches {spec.accepting} without "
            "crossing a verified ISN-checked edge — a spoofing client could "
            "complete this path without echoing the server's sequence number",
        )
    if len(bad_paths) > max_reports:
        yield _finding(
            extraction.path,
            lineno,
            col,
            "S004",
            f"model walk: {len(bad_paths) - max_reports} further unverified "
            f"path(s) into {spec.accepting} suppressed",
        )


def check_retry_escapes(extraction: FsmExtraction, spec: FsmSpec) -> Iterator[Finding]:
    """S006: retry-obligated states need a retransmit escape + bounded abort."""
    if not spec.retry_states:
        return
    handler = extraction.methods.get("_on_retransmit")
    if handler is None:
        yield _finding(
            extraction.path,
            1,
            0,
            "S006",
            "no _on_retransmit handler found — every in-flight state would "
            "hang forever once a peer goes silent",
        )
        return
    tests = [
        node.test for node in ast.walk(handler) if isinstance(node, (ast.If, ast.While))
    ]
    mentioned: set[str] = set()
    has_inflight_catchall = False
    for test in tests:
        for sub in ast.walk(test):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == extraction.enum_name
                and sub.attr in extraction.states
            ):
                mentioned.add(sub.attr)
        if any(name == "_inflight" for name in _identifiers(test)):
            has_inflight_catchall = True
    #: states whose retransmission rides the in-flight segment queue
    data_states = spec.retry_states - {"SYN_SENT", "SYN_RCVD"}
    for state in sorted(spec.retry_states):
        covered = state in mentioned or (
            state in data_states and has_inflight_catchall
        )
        if not covered:
            yield _finding(
                extraction.path,
                handler.lineno,
                handler.col_offset,
                "S006",
                f"retry-obligated state {state} has no retransmit escape in "
                "_on_retransmit() — a lost segment strands the connection",
            )
    budget_guarded_abort = False
    for node in ast.walk(handler):
        if isinstance(node, ast.If):
            ids = _identifiers(node.test)
            if any("retransmit" in name for name in ids) and any(
                "max" in name for name in ids
            ):
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Call)
                        and (dotted_name(sub.func) or "").rsplit(".", 1)[-1]
                        == "abort"
                    ):
                        budget_guarded_abort = True
    if not budget_guarded_abort:
        yield _finding(
            extraction.path,
            handler.lineno,
            handler.col_offset,
            "S006",
            "_on_retransmit() has no budget-bounded abort "
            "(retransmits > max_retransmits -> abort) — a dead peer costs "
            "unbounded retransmissions instead of bounded time",
        )


#: Callees that create or feed a connection; inside a SYN-cookie region
#: they must be dominated by the cookie ISN validation.
_COOKIE_CALLEES = ("handle", "on_connection", "_start_from_cookie")


def check_syn_cookie_order(extraction: FsmExtraction) -> Iterator[Finding]:
    """S007: no segment handling before SYN-cookie validation."""
    conn_classes = {
        name for name in extraction.call_sites if name[:1].isupper()
    }
    callees = set(_COOKIE_CALLEES) | {
        c for c in conn_classes if "conn" in c.lower()
    }
    for callee in sorted(callees):
        for site in extraction.call_sites.get(callee, []):
            in_cookie_region = any(
                _mentions_flag(c.expr, "syn_cookies", c.polarity)
                for c in site.conditions
            )
            if not in_cookie_region:
                continue
            if _isn_dominated(site.conditions):
                continue
            yield _finding(
                extraction.path,
                site.lineno,
                site.col,
                "S007",
                f"{callee}() is invoked in the SYN-cookie path of "
                f"{site.method}() before the cookie ISN is validated — a "
                "forged ACK would be processed as a completed handshake",
            )
