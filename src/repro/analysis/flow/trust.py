"""Trust-boundary declarations: sources, sanitizers, sinks per scheme.

A guard scheme *self-describes* its trust boundary by declaring a
module-level literal named ``__trust_boundary__``.  The analyser reads the
declaration **statically** (``ast.literal_eval`` on the assignment — the
module is never imported), merges it with the repo-wide defaults below,
and uses the result to drive the T-rules::

    __trust_boundary__ = {
        "scheme": "modified",
        "entry_points": ["RemoteDnsGuard._handle_ans_query"],
        "taint_params": ["packet", "datagram", "message"],
        "sanitizers": ["cookies.verify", "policy_for"],
        "sinks": ["_strip_and_forward", "_safe_send"],
        "assumes": "free-text statement of what is trusted and why",
    }

Field semantics:

``entry_points``
    Qualified function names (``Class.method`` or bare function name)
    whose ``taint_params`` parameters carry attacker-controlled data.
    Helpers reached from entry points are covered by call summaries, so
    they are *not* listed — listing a helper would double-report.
``taint_params``
    Parameter names bound to attacker-controlled values at entry points.
``sanitizers``
    Call names (matched on their dotted suffix) whose return value is
    trusted evidence: branching on it, or an early return guarded by its
    negation, *launders* the dominated region.  These are the paper's
    cookie verify / SYN-cookie validate / ISN echo check — plus explicit
    operator decisions such as a per-source policy lookup.
``sinks``
    Call names that admit a request toward the protected server.  A sink
    reached with tainted data or under tainted control, with no sanitizer
    dominating it, is a T001 finding.  A sink name appearing as a *call
    argument* (the ``submit(cost, fn, *args)`` callback idiom) is treated
    as a sink call over the remaining arguments.
``sanitizer_attrs``
    Attribute names whose value is sanitizer evidence rather than a call
    result — e.g. ``iss`` in the TCP stack: comparing ``segment.ack``
    against ``self.iss + 1`` *is* the ISN echo check, with no function to
    register.
``secrets`` / ``secret_attrs``
    Extra secret-producing call names / attribute names for T002 (merged
    with the defaults below).
``assumes``
    Documentation only: the trust assumption the declaration encodes.
"""

from __future__ import annotations

import ast
import dataclasses

from ..declarations import find_declaration_dict

#: Attribute names on any value that is already attacker-tainted do not
#: matter (taint is closed under attribute access); these are the *root*
#: secret attributes for T002 — key material wherever it lives.
DEFAULT_SECRET_ATTRS = frozenset(
    {"_cookie_secret", "_current_key", "_previous_key"}
)

#: Calls whose result is key material (T002 sources).
DEFAULT_SECRET_CALLS = frozenset({"random_key", "export_state"})

#: Calls that *declassify* a secret: a keyed digest is the cookie itself,
#: which is sent to clients by design — the key does not leak through it.
DEFAULT_DECLASSIFIERS = frozenset(
    {"hashlib.md5", "hashlib.blake2b", "hashlib.sha256", "md5", "blake2b"}
)

#: Exposure sinks for T002: anything that renders values toward logs,
#: human-facing reports, or the observability exporters.
DEFAULT_EXPOSURE_SINKS = frozenset(
    {
        "print",
        "logging.info",
        "logging.debug",
        "logging.warning",
        "logging.error",
        "log",
        "obs.counter",
        "obs.gauge",
        "add_snapshot",
        "spans.point",
        "point",
        "format_text",
    }
)


@dataclasses.dataclass(frozen=True, slots=True)
class TrustModel:
    """The merged trust boundary the T-rules run under for one module."""

    scheme: str = ""
    entry_points: frozenset[str] = frozenset()
    taint_params: frozenset[str] = frozenset()
    sanitizers: frozenset[str] = frozenset()
    sanitizer_attrs: frozenset[str] = frozenset()
    sinks: frozenset[str] = frozenset()
    secret_attrs: frozenset[str] = DEFAULT_SECRET_ATTRS
    secret_calls: frozenset[str] = DEFAULT_SECRET_CALLS
    declassifiers: frozenset[str] = DEFAULT_DECLASSIFIERS
    exposure_sinks: frozenset[str] = DEFAULT_EXPOSURE_SINKS
    assumes: str = ""

    def is_entry_point(self, qualname: str) -> bool:
        return qualname in self.entry_points or (
            "." in qualname and qualname.split(".", 1)[1] in self.entry_points
        )


#: Model applied to modules with no declaration: T002 still runs (secret
#: hygiene is repo-wide), T001 has no sources/sinks and stays silent.
DEFAULT_TRUST = TrustModel()

_DECL_NAME = "__trust_boundary__"

_LIST_FIELDS = {
    "entry_points",
    "taint_params",
    "sanitizers",
    "sanitizer_attrs",
    "sinks",
    "secret_attrs",
    "secret_calls",
    "declassifiers",
    "exposure_sinks",
}


def find_declaration(tree: ast.AST) -> dict | None:
    """The module's ``__trust_boundary__`` literal, or None."""
    found = find_declaration_dict(tree, _DECL_NAME)
    return found[0] if found is not None else None


def trust_for_module(tree: ast.AST) -> TrustModel:
    """Merge a module's declaration (if any) over the defaults."""
    decl = find_declaration(tree)
    if decl is None:
        return DEFAULT_TRUST
    merged: dict[str, object] = {}
    merged["scheme"] = str(decl.get("scheme", ""))
    merged["assumes"] = str(decl.get("assumes", ""))
    for field in _LIST_FIELDS:
        declared = frozenset(str(item) for item in decl.get(field, ()))
        base = getattr(DEFAULT_TRUST, field)
        # list fields *extend* the defaults; an explicit empty list is a
        # no-op, never a mask — defaults are the safety floor
        merged[field] = base | declared
    return TrustModel(**merged)  # type: ignore[arg-type]
