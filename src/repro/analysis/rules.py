"""Repo-specific determinism lint rules.

Every paper result this repo reproduces rests on ``Simulator`` runs being
bit-for-bit reproducible from a seed.  These rules catch the source-level
patterns that silently break that property.

Adding a rule
=============

Subclass :class:`LintRule`, set ``id``/``summary``/``rationale``, implement
``check``, and decorate with :func:`register` — roughly 20 lines::

    @register
    class NoSleep(LintRule):
        id = "D006"
        summary = "no time.sleep in simulation code"
        rationale = "virtual time never needs the host clock"

        def check(self, tree, path):
            for node in ast.walk(tree):
                if (isinstance(node, ast.Call)
                        and dotted_name(node.func) == "time.sleep"):
                    yield self.finding(path, node, "time.sleep() call")

Suppress a finding inline with ``# repro: allow[D006]`` on the offending
line (comma-separate several rule ids in one marker).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from .findings import Finding

#: Rule registry: id -> rule class.  Populated by :func:`register`.
RULES: dict[str, type["LintRule"]] = {}


def register(rule_cls: type["LintRule"]) -> type["LintRule"]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if rule_cls.id in RULES:
        raise ValueError(f"duplicate lint rule id {rule_cls.id!r}")
    RULES[rule_cls.id] = rule_cls
    return rule_cls


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def type_checking_guarded(tree: ast.AST) -> set[ast.AST]:
    """All nodes inside ``if TYPE_CHECKING:`` blocks — they never execute,
    so typing-only imports of e.g. ``random`` are not runtime randomness."""
    guarded: set[ast.AST] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If):
            test_name = dotted_name(node.test)
            if test_name in ("TYPE_CHECKING", "typing.TYPE_CHECKING"):
                for child in node.body:
                    guarded.update(ast.walk(child))
    return guarded


class LintRule:
    """Base class: one determinism rule, stateless, checked per file."""

    id: ClassVar[str]
    summary: ClassVar[str]
    rationale: ClassVar[str]
    #: ``error`` | ``warning`` | ``note`` — drives the SARIF level and the
    #: ``--fail-on`` exit-code contract.
    severity: ClassVar[str] = "error"

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


# ---------------------------------------------------------------------------
# D001 — wall-clock reads
# ---------------------------------------------------------------------------

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.clock_gettime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}


@register
class NoWallClock(LintRule):
    id = "D001"
    summary = "no wall-clock reads in simulation code"
    rationale = (
        "simulated behaviour keyed to the host clock differs on every run; "
        "all time must come from Simulator.now"
    )

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _WALL_CLOCK_CALLS:
                    yield self.finding(
                        path, node, f"wall-clock read {name}() — use Simulator.now"
                    )


# ---------------------------------------------------------------------------
# D002 — unseeded / process-global randomness
# ---------------------------------------------------------------------------

_GLOBAL_RNG_FNS = {
    "random",
    "randint",
    "randrange",
    "randbytes",
    "getrandbits",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "vonmisesvariate",
    "gammavariate",
    "betavariate",
    "paretovariate",
    "weibullvariate",
    "seed",
}

#: OS-entropy reads: every bit drawn here is unreproducible from a seed.
_OS_ENTROPY_CALLS = {
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
    "secrets.choice",
    "os.urandom",
}


@register
class NoGlobalRandom(LintRule):
    id = "D002"
    summary = "no global/unseeded randomness outside Simulator.rng"
    rationale = (
        "the process-global random module and unseeded random.Random() draw "
        "from OS entropy; every stochastic choice must flow from the seeded "
        "Simulator.rng"
    )

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        guarded = type_checking_guarded(tree)
        for node in ast.walk(tree):
            if node in guarded:
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            path,
                            node,
                            "import random — draw from the seeded Simulator.rng "
                            "instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        path,
                        node,
                        "from random import ... — draw from the seeded "
                        "Simulator.rng instead",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name == "random.Random" and not node.args and not node.keywords:
                    yield self.finding(
                        path,
                        node,
                        "unseeded random.Random() — pass an explicit seed or use "
                        "Simulator.rng",
                    )
                elif (
                    name is not None
                    and name.startswith("random.")
                    and name.removeprefix("random.") in _GLOBAL_RNG_FNS
                ):
                    yield self.finding(
                        path,
                        node,
                        f"{name}() uses the process-global RNG — use Simulator.rng",
                    )
                elif name in _OS_ENTROPY_CALLS:
                    yield self.finding(
                        path,
                        node,
                        f"{name}() draws OS entropy — not reproducible from a "
                        "seed; plumb key material through Simulator.rng",
                    )


# ---------------------------------------------------------------------------
# D003 — unordered iteration feeding event scheduling
# ---------------------------------------------------------------------------

_SCHEDULE_METHODS = {"schedule", "schedule_at"}
_DICT_VIEW_METHODS = {"keys", "values", "items"}


def _is_unordered_iterable(node: ast.expr) -> str | None:
    """Why ``for x in <node>`` has no guaranteed deterministic order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set literal"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}() result"
        if isinstance(func, ast.Attribute) and func.attr in _DICT_VIEW_METHODS:
            return f".{func.attr}() view"
    return None


def _schedules_events(body: list[ast.stmt]) -> ast.Call | None:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _SCHEDULE_METHODS:
                    return node
                if isinstance(func, ast.Name) and func.id in _SCHEDULE_METHODS:
                    return node
    return None


@register
class NoUnorderedScheduling(LintRule):
    id = "D003"
    summary = "no set/dict-order iteration feeding event scheduling"
    rationale = (
        "set iteration order (and dict order, when insertion order is itself "
        "unstable) depends on hashes and allocation; events scheduled from "
        "such loops land in a run-dependent sequence — wrap the iterable in "
        "sorted(...)"
    )

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            why = _is_unordered_iterable(node.iter)
            if why is None:
                continue
            call = _schedules_events(node.body)
            if call is not None:
                yield self.finding(
                    path,
                    node,
                    f"iterating a {why} schedules events — wrap the iterable "
                    "in sorted(...) for a deterministic order",
                )


# ---------------------------------------------------------------------------
# D004 — mutable default arguments
# ---------------------------------------------------------------------------


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        return isinstance(func, ast.Name) and func.id in ("list", "dict", "set", "bytearray")
    return False


@register
class NoMutableDefaults(LintRule):
    id = "D004"
    summary = "no mutable default arguments"
    rationale = (
        "a mutable default is shared across calls; state leaking between "
        "two supposedly independent simulator runs makes the second run "
        "depend on the first"
    )

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        path,
                        default,
                        f"mutable default argument in {node.name}() — use None "
                        "and construct inside the body",
                    )


# ---------------------------------------------------------------------------
# D005 — floating-point equality on virtual time
# ---------------------------------------------------------------------------

_TIME_NAMES = {"now", "vtime", "virtual_time"}


def _mentions_virtual_time(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in _TIME_NAMES
    if isinstance(node, ast.Name):
        return node.id in _TIME_NAMES
    return False


@register
class NoFloatTimeEquality(LintRule):
    id = "D005"
    summary = "no floating-point == / != on virtual time"
    rationale = (
        "virtual timestamps are accumulated floats; exact equality is "
        "rounding-order dependent — compare with a tolerance or order by "
        "event sequence instead"
    )

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_mentions_virtual_time(operand) for operand in operands):
                yield self.finding(
                    path,
                    node,
                    "exact float comparison on virtual time — use a tolerance "
                    "(abs(a - b) < eps) or compare event ordering",
                )


# ---------------------------------------------------------------------------
# W002 — observability code must be observe-only
# ---------------------------------------------------------------------------

_OBS_FORBIDDEN_CALLS = {"schedule", "schedule_at", "child_rng"}

#: Mutating guard/limiter entry points — the *actuator seam*.  Only the
#: control plane (``repro.control``) may call these; a signal callback in
#: ``repro/obs/`` reaching for one turns observation into participation.
_ACTUATOR_ENTRY_POINTS = frozenset(
    {
        "set_policy",
        "set_admission",
        "rotate_cookie_key",
        "reconfigure",
        "rotate",
        "crash",
        "restart",
        "reset",
    }
)


@register
class ObserveOnly(LintRule):
    id = "W002"
    summary = (
        "repro.obs must stay observe-only and repro.farm must stay seed-pure: "
        "no actuator calls, no private RNGs"
    )
    rationale = (
        "the observability layer is a read-only tap: if it schedules events, "
        "draws randomness, or calls a mutating guard/limiter entry point "
        "(the actuator seam reserved for repro.control), enabling it changes "
        "the event trace and every --sanitize parity guarantee breaks; farm "
        "workers carry the same discipline — a worker that actuates a guard "
        "or constructs its own random.Random breaks the contract that a "
        "cell's result depends only on (matrix, params, derived seed), so "
        "farm randomness must flow from the per-cell seed "
        "(Cell.seed / Simulator.child_rng)"
    )

    @staticmethod
    def _scope(path: str) -> str | None:
        p = path.replace("\\", "/")
        if "repro/obs/" in p:
            return "obs"
        if "repro/farm/" in p:
            return "farm"
        return None

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        scope = self._scope(path)
        if scope is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    scope == "obs"
                    and isinstance(func, ast.Attribute)
                    and func.attr in _OBS_FORBIDDEN_CALLS
                ):
                    yield self.finding(
                        path,
                        node,
                        f".{func.attr}() call in observability code — obs must "
                        "never schedule events or derive RNG streams",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in _ACTUATOR_ENTRY_POINTS
                ):
                    where = (
                        "observability code — mutating guard/limiter entry "
                        "points are the control plane's actuator seam "
                        "(repro.control); observation must not participate"
                        if scope == "obs"
                        else "farm code — farm workers may not call mutating "
                        "guard/limiter entry points outside the sanctioned "
                        "actuator seam (repro.control); a cell's result must "
                        "depend only on its params and derived seed"
                    )
                    yield self.finding(path, node, f".{func.attr}() call in {where}")
                elif scope == "farm":
                    name = dotted_name(func)
                    if name in ("random.Random", "Random"):
                        yield self.finding(
                            path,
                            node,
                            f"{name}() constructed in farm code — farm "
                            "randomness must derive from the per-cell seed "
                            "(Cell.seed / Simulator.child_rng), never a "
                            "private RNG",
                        )
            elif scope == "obs" and isinstance(node, ast.Attribute) and node.attr == "rng":
                yield self.finding(
                    path,
                    node,
                    ".rng access in observability code — obs must never touch "
                    "simulator randomness",
                )


# ---------------------------------------------------------------------------
# W001 — swallowed exceptions in event callbacks
# ---------------------------------------------------------------------------


@register
class NoSwallowedExceptions(LintRule):
    id = "W001"
    summary = "no bare except / silently swallowed exceptions"
    rationale = (
        "an exception swallowed inside an event callback silently truncates "
        "the event cascade, producing a plausible-looking but wrong run; "
        "failures must surface or be narrowly handled"
    )

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    path, node, "bare except: — catch a specific exception type"
                )
                continue
            type_name = dotted_name(node.type)
            body_is_pass = len(node.body) == 1 and isinstance(node.body[0], ast.Pass)
            if type_name in ("Exception", "BaseException") and body_is_pass:
                yield self.finding(
                    path,
                    node,
                    f"except {type_name}: pass swallows every failure — "
                    "handle or re-raise",
                )


# ---------------------------------------------------------------------------
# U001 — suppression hygiene (documentation entry)
# ---------------------------------------------------------------------------


@register
class UnusedSuppression(LintRule):
    id = "U001"
    # hygiene, not a live hazard — still fails the repo gate (--fail-on
    # warning) but is distinguishable for SARIF consumers
    severity = "warning"
    summary = "suppression marker that suppresses nothing"
    rationale = (
        "an allow[...] marker whose rule never fires on its line — or that "
        "names an unknown rule id — documents a hazard that no longer "
        "exists; stale rationales are misinformation, so the marker must "
        "be deleted when the finding goes away"
    )

    # U001 is cross-engine: findings are produced by
    # ``engine.SuppressionTracker.unused_findings`` after the lint *and*
    # flow analyses report which rules ran.  This class only documents the
    # rule id in the registry (tables, SARIF metadata, --rules selection).
    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        return iter(())
