"""Static analysis + runtime sanitizer guarding the repo's determinism.

Every reproduced result depends on the claim that a ``Simulator`` run is
bit-for-bit reproducible from its seed.  This package enforces it:

* :mod:`repro.analysis.rules` — repo-specific AST lint rules (D001 wall
  clock, D002 global randomness, D003 unordered scheduling, D004 mutable
  defaults, D005 float time equality, W001 swallowed exceptions), each
  suppressible inline with ``# repro: allow[RULE]``;
* :mod:`repro.analysis.engine` — file discovery, parsing, suppression
  filtering; :func:`lint_paths` / :func:`lint_source`;
* :mod:`repro.analysis.flow` — dataflow analyses: T-rules (taint over the
  guard trust boundaries declared via ``__trust_boundary__``), S-rules
  (TCP FSM conformance against the declared spec), SARIF 2.1.0 export and
  a checked-in findings baseline;
* :mod:`repro.analysis.sanitizer` — runtime dual-run trace comparison;
  :func:`run_sanitized` plus ``python -m repro <cmd> --sanitize``;
* :mod:`repro.analysis.cli` — ``python -m repro.analysis [--flow]
  [--sarif OUT] [paths...]``, nonzero exit on findings for CI.
"""

from .engine import (
    SuppressionTracker,
    lint_file,
    lint_paths,
    lint_source,
    suppressed_rules,
)
from .findings import Finding
from .rules import RULES, LintRule, register
from .sanitizer import (
    Divergence,
    SanitizeReport,
    TraceCollector,
    capture_traces,
    run_sanitized,
)

__all__ = [
    "Divergence",
    "Finding",
    "LintRule",
    "RULES",
    "SanitizeReport",
    "SuppressionTracker",
    "TraceCollector",
    "capture_traces",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "run_sanitized",
    "suppressed_rules",
]
