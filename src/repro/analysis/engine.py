"""AST lint engine: parse files, run the rule registry, honour suppressions.

Stdlib-only (``ast`` + ``re``); no third-party linter frameworks.  The
engine is deliberately small: rules do the pattern matching, the engine
owns file discovery, parsing, inline-suppression filtering and ordering.

Suppression syntax
==================

Append ``# repro: allow[D002]`` (or ``allow[D002,W001]``) to the offending
line.  The marker suppresses only the listed rule ids, only on that line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator

from .findings import Finding
from .rules import RULES, LintRule

#: Rule id used for files that fail to parse.
SYNTAX_ERROR_RULE = "E999"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\s,]+)\]")

#: Directory names never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


def _add_marker(allowed: dict[int, set[str]], lineno: int, text: str) -> None:
    match = _ALLOW_RE.search(text)
    if match:
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        allowed.setdefault(lineno, set()).update(rules)


def suppressed_rules(source: str) -> dict[int, set[str]]:
    """Map of 1-based line number -> rule ids allowed on that line.

    Only markers in real ``#`` comment tokens count: a docstring that
    *mentions* the syntax must neither suppress findings on its line nor
    register as a marker for U001 hygiene.  Sources that cannot be
    tokenized (E999 files) fall back to a plain line scan.
    """
    allowed: dict[int, set[str]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                _add_marker(allowed, token.start[0], token.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        allowed.clear()
        for lineno, line in enumerate(source.splitlines(), start=1):
            _add_marker(allowed, lineno, line)
    return allowed


#: Rule id for suppression hygiene: markers that suppress nothing.
UNUSED_SUPPRESSION_RULE = "U001"


class SuppressionTracker:
    """Marker bookkeeping shared across the lint and flow engines.

    Engines register each file's markers and report which rules they ran;
    every filtered finding marks its marker *used*.  Afterwards,
    :meth:`unused_findings` turns the leftovers into U001:

    * a marker naming a rule id no engine knows is always U001 (typos
      would otherwise suppress nothing, silently, forever);
    * a marker naming a rule that ran but suppressed nothing on its line
      is U001 — the hazard it documented is gone, so the rationale is now
      misinformation;
    * markers for rules that did *not* run this invocation are left alone
      (a lint-only run cannot judge a ``allow[T001]`` marker).
    """

    def __init__(self) -> None:
        self._markers: dict[tuple[str, int], set[str]] = {}
        self._used: set[tuple[str, int, str]] = set()
        self._rules_run: set[str] = set()

    def register_source(self, path: str, source: str) -> None:
        for lineno, rules in suppressed_rules(source).items():
            self._markers.setdefault((path, lineno), set()).update(rules)

    def note_rules(self, rule_ids: Iterable[str]) -> None:
        self._rules_run.update(rule_ids)

    def is_suppressed(self, finding: Finding) -> bool:
        key = (finding.path, finding.line)
        if finding.rule in self._markers.get(key, ()):
            self._used.add((finding.path, finding.line, finding.rule))
            return True
        return False

    def unused_findings(self, known_rules: Iterable[str]) -> list[Finding]:
        known = set(known_rules) | {UNUSED_SUPPRESSION_RULE}
        findings: list[Finding] = []
        for (path, lineno), rules in sorted(self._markers.items()):
            if UNUSED_SUPPRESSION_RULE in rules:
                # an explicit allow[U001] opts the line out of hygiene
                continue
            for rule in sorted(rules):
                if rule not in known:
                    message = (
                        f"suppression marker names unknown rule id {rule!r} "
                        "— it can never match a finding; fix the id or "
                        "delete the marker"
                    )
                elif rule not in self._rules_run:
                    continue
                elif (path, lineno, rule) not in self._used:
                    message = (
                        f"unused suppression: {rule} did not fire on this "
                        "line — the hazard is gone, delete the marker"
                    )
                else:
                    continue
                findings.append(
                    Finding(
                        path=path,
                        line=lineno,
                        col=0,
                        rule=UNUSED_SUPPRESSION_RULE,
                        message=message,
                    )
                )
        return findings


def _select_rules(rule_ids: Iterable[str] | None) -> list[LintRule]:
    if rule_ids is None:
        selected = sorted(RULES)
    else:
        unknown = sorted(set(rule_ids) - set(RULES))
        if unknown:
            raise KeyError(f"unknown lint rule ids: {', '.join(unknown)}")
        selected = sorted(set(rule_ids))
    return [RULES[rule_id]() for rule_id in selected]


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rule_ids: Iterable[str] | None = None,
    tracker: SuppressionTracker | None = None,
    tree: ast.Module | None = None,
) -> list[Finding]:
    """Lint one source string; returns findings sorted by location.

    ``tree`` supplies an already-parsed AST for ``source`` so callers
    holding a shared parse (the analysis CLI) skip the re-parse.
    """
    selected = _select_rules(rule_ids)
    if tracker is not None:
        tracker.register_source(path, source)
        tracker.note_rules(rule.id for rule in selected)
    try:
        if tree is None:
            tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule=SYNTAX_ERROR_RULE,
                message=f"syntax error: {exc.msg}",
            )
        ]
    allowed = suppressed_rules(source)
    findings: list[Finding] = []
    for rule in selected:
        for finding in rule.check(tree, path):
            if tracker is not None:
                if tracker.is_suppressed(finding):
                    continue
            elif finding.rule in allowed.get(finding.line, ()):
                continue
            findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def lint_file(
    path: str | Path,
    *,
    rule_ids: Iterable[str] | None = None,
    tracker: SuppressionTracker | None = None,
) -> list[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8", errors="replace")
    return lint_source(source, str(file_path), rule_ids=rule_ids, tracker=tracker)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield .py files under ``paths`` in sorted order, skipping junk dirs."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS or any(p.startswith(".") for p in candidate.parts):
                continue
            yield candidate


def lint_paths(
    paths: Iterable[str | Path],
    *,
    rule_ids: Iterable[str] | None = None,
    tracker: SuppressionTracker | None = None,
    parsed: "dict[str, object] | None" = None,
) -> list[Finding]:
    """Lint every Python file under ``paths``; findings sorted by location.

    ``parsed`` maps path strings to already-parsed modules (any object
    with ``source`` and ``tree`` attributes, e.g.
    :class:`~repro.analysis.flow.core.ModuleInfo`) so each file is
    parsed once across every rule family.  Files absent from the map —
    notably E999 files ``load_modules`` skips — are read and parsed
    here as before.
    """
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        entry = parsed.get(str(file_path)) if parsed else None
        if entry is not None:
            findings.extend(
                lint_source(
                    entry.source,  # type: ignore[attr-defined]
                    str(file_path),
                    rule_ids=rule_ids,
                    tracker=tracker,
                    tree=entry.tree,  # type: ignore[attr-defined]
                )
            )
        else:
            findings.extend(lint_file(file_path, rule_ids=rule_ids, tracker=tracker))
    return sorted(findings, key=Finding.sort_key)
