"""AST lint engine: parse files, run the rule registry, honour suppressions.

Stdlib-only (``ast`` + ``re``); no third-party linter frameworks.  The
engine is deliberately small: rules do the pattern matching, the engine
owns file discovery, parsing, inline-suppression filtering and ordering.

Suppression syntax
==================

Append ``# repro: allow[D002]`` (or ``allow[D002,W001]``) to the offending
line.  The marker suppresses only the listed rule ids, only on that line.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator

from .findings import Finding
from .rules import RULES, LintRule

#: Rule id used for files that fail to parse.
SYNTAX_ERROR_RULE = "E999"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\s,]+)\]")

#: Directory names never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


def suppressed_rules(source: str) -> dict[int, set[str]]:
    """Map of 1-based line number -> rule ids allowed on that line."""
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            allowed.setdefault(lineno, set()).update(rules)
    return allowed


def _select_rules(rule_ids: Iterable[str] | None) -> list[LintRule]:
    if rule_ids is None:
        selected = sorted(RULES)
    else:
        unknown = sorted(set(rule_ids) - set(RULES))
        if unknown:
            raise KeyError(f"unknown lint rule ids: {', '.join(unknown)}")
        selected = sorted(set(rule_ids))
    return [RULES[rule_id]() for rule_id in selected]


def lint_source(
    source: str, path: str = "<string>", *, rule_ids: Iterable[str] | None = None
) -> list[Finding]:
    """Lint one source string; returns findings sorted by location."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule=SYNTAX_ERROR_RULE,
                message=f"syntax error: {exc.msg}",
            )
        ]
    allowed = suppressed_rules(source)
    findings: list[Finding] = []
    for rule in _select_rules(rule_ids):
        for finding in rule.check(tree, path):
            if finding.rule in allowed.get(finding.line, ()):
                continue
            findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def lint_file(path: str | Path, *, rule_ids: Iterable[str] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8", errors="replace")
    return lint_source(source, str(file_path), rule_ids=rule_ids)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield .py files under ``paths`` in sorted order, skipping junk dirs."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS or any(p.startswith(".") for p in candidate.parts):
                continue
            yield candidate


def lint_paths(
    paths: Iterable[str | Path], *, rule_ids: Iterable[str] | None = None
) -> list[Finding]:
    """Lint every Python file under ``paths``; findings sorted by location."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rule_ids=rule_ids))
    return sorted(findings, key=Finding.sort_key)
