"""Finding: one lint diagnostic, file/line/column precise."""

from __future__ import annotations

import dataclasses
from typing import Any


@dataclasses.dataclass(frozen=True, slots=True)
class Finding:
    """A single rule violation at a precise source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)
