"""Hot-path inference: which functions run per-event, and how much they cost.

The perf rules only fire inside the *hot set* — the transitive call-graph
closure of the code that runs once per simulated event.  Hotness has two
sources:

* **static roots** — every callback the source tree passes to
  ``Simulator.schedule`` / ``schedule_at`` / ``Cpu.submit`` (resolved with
  the same self-attribute / subclass-closure / name-index machinery the
  races layer uses), plus ``Node.receive``, the per-packet entry point
  every link delivery funnels through;
* **profile roots** — handler keys from ``scripts/BENCH_profile.json`` (written by
  :mod:`repro.obs.profiler`), mapped back to static functions by their
  module-qualified name.  The profile sees through indirection the static
  pass cannot (``cpu.submit(cost, fn, *args)`` where ``fn`` is a
  parameter), and its per-handler timings weight the findings.

Propagation through callees is a *may* analysis: an ambiguous bare name
(``demux`` is both ``UdpStack.demux`` and ``TcpStack.demux``) marks every
candidate hot, bounded by :data:`_MAX_CANDIDATES` so hub names like
``send`` or ``start`` do not drag the whole tree into the hot set.  The
profile never gates hotness — repo runs and tests stay deterministic with
or without a ``scripts/BENCH_profile.json`` on disk — it only enriches what the
static closure already found.
"""

from __future__ import annotations

import ast
import dataclasses
import json
from pathlib import Path

from ..rules import dotted_name
from ..flow.core import FunctionDecl, ModuleInfo, _call_name
from ..races.effects import _lambda_as_function, _self_attr, _subclass_closure

#: Scheduler entry points and their callback-argument index.  ``submit`` is
#: the CPU-queue idiom ``cpu.submit(cost, fn, *args)``; all three take the
#: callable second.
CALLBACK_TAKERS: dict[str, int] = {"schedule": 1, "schedule_at": 1, "submit": 1}

#: Functions that are per-packet entry points even when no schedule site
#: resolves to them statically (link deliveries schedule ``receiver.receive``
#: through a variable the static pass cannot see).
ALWAYS_HOT_QUALNAMES = frozenset({"Node.receive"})

#: Cross-module bare-name fan-out cap: a name with more candidates than
#: this is a hub (``send``, ``start``, ``close``) and is left unresolved
#: rather than marking half the tree hot.
_MAX_CANDIDATES = 3

#: Call-graph propagation depth cap (handler chains are shallow).
_MAX_DEPTH = 12


@dataclasses.dataclass(slots=True)
class PerfProfile:
    """Parsed ``scripts/BENCH_profile.json``: events/s plus per-handler timings."""

    events_per_second: float
    #: handler key (``module.Qualname``) -> (calls, seconds)
    handlers: dict[str, tuple[int, float]]


def load_profile(path: str | Path) -> PerfProfile | None:
    """Parse a ``BENCH_*.json`` profile; ``None`` when the file is absent.

    A present-but-malformed profile raises ``ValueError`` — silently
    ignoring it would silently drop the weighting.
    """
    profile_path = Path(path)
    if not profile_path.is_file():
        return None
    try:
        doc = json.loads(profile_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"profile {path}: not valid JSON ({exc})") from exc
    detail = doc.get("detail", doc) if isinstance(doc, dict) else None
    if not isinstance(detail, dict) or not isinstance(detail.get("handlers"), dict):
        raise ValueError(f"profile {path}: no detail.handlers table")
    handlers: dict[str, tuple[int, float]] = {}
    for key, stats in detail["handlers"].items():
        if isinstance(stats, dict):
            handlers[str(key)] = (
                int(stats.get("calls", 0)),
                float(stats.get("seconds", 0.0)),
            )
    return PerfProfile(
        events_per_second=float(detail.get("events_per_second", 0.0)),
        handlers=handlers,
    )


def module_dotted(path: str | Path) -> str:
    """Dotted module name for a source path (``src/repro/a/b.py`` ->
    ``repro.a.b``); tmp-dir toy modules fall back to their bare stem."""
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
        return ".".join(parts)
    return parts[-1] if parts else ""


@dataclasses.dataclass(slots=True)
class HotFunction:
    """One function in the hot set and the evidence that put it there."""

    module: ModuleInfo
    decl: FunctionDecl
    root: str  # qualname of the entry root this was reached from
    depth: int  # call-graph hops from that root
    calls: int = 0  # this function's own profile calls (0 if unmatched)
    seconds: float = 0.0  # this function's own profile seconds
    profiled: bool = False  # the root (or the function) appears in the profile

    def describe(self) -> str:
        """Stable hot-evidence label for finding messages.

        Deliberately excludes the profile's call counts and timings: those
        change every time the profile is regenerated, and finding messages
        are baseline keys that must not churn with them.
        """
        via = "profiled hot path" if self.profiled else "hot path"
        if self.depth == 0:
            return f"{via} root {self.root}"
        return f"{via} via {self.root}"


class HotPaths:
    """The hot set for one analysis run, keyed by ``(path, qualname)``."""

    def __init__(
        self,
        functions: dict[tuple[str, str], HotFunction],
        profile: PerfProfile | None,
    ):
        self.functions = functions
        self.profile = profile

    def get(self, path: str, qualname: str) -> HotFunction | None:
        return self.functions.get((path, qualname))

    def __len__(self) -> int:
        return len(self.functions)

    def weight_for(self, path: str, qualname: str) -> tuple[int, float]:
        """(calls, seconds) attributed to one hot function by the profile."""
        hot = self.get(path, qualname)
        return (hot.calls, hot.seconds) if hot is not None else (0, 0.0)


class _Resolver:
    """Bare-name callee resolution with bounded may-analysis fan-out."""

    def __init__(self, modules: list[ModuleInfo]):
        self.by_bare: dict[str, list[tuple[ModuleInfo, FunctionDecl]]] = {}
        for module in modules:
            for qualname, decl in module.functions.items():
                bare = qualname.rsplit(".", 1)[-1]
                self.by_bare.setdefault(bare, []).append((module, decl))

    def resolve(
        self, module: ModuleInfo, enclosing_class: str | None, name: str
    ) -> list[tuple[ModuleInfo, FunctionDecl]]:
        bare = name.rsplit(".", 1)[-1]
        if enclosing_class is not None:
            own = module.functions.get(f"{enclosing_class}.{bare}")
            if own is not None:
                return [(module, own)]
        local = module.function_named(bare)
        if local is not None:
            return [(module, local)]
        foreign = [c for c in self.by_bare.get(bare, []) if c[0] is not module]
        if 0 < len(foreign) <= _MAX_CANDIDATES:
            return foreign
        return []


def _enclosing_class(qualname: str) -> str | None:
    return qualname.split(".", 1)[0] if "." in qualname else None


def callback_calls(node: ast.AST) -> list[ast.Call]:
    """Scheduler calls (``schedule``/``schedule_at``/``submit``) under ``node``
    that pass a callback positionally."""
    sites: list[ast.Call] = []
    for call in ast.walk(node):
        if not isinstance(call, ast.Call):
            continue
        name = _call_name(call)
        suffix = name.rsplit(".", 1)[-1]
        if suffix in CALLBACK_TAKERS and len(call.args) > CALLBACK_TAKERS[suffix]:
            sites.append(call)
    return sites


def _static_roots(
    modules: list[ModuleInfo], resolver: _Resolver
) -> list[tuple[ModuleInfo, FunctionDecl, str]]:
    """(module, function, root label) for every statically-visible root."""
    roots: list[tuple[ModuleInfo, FunctionDecl, str]] = []

    def add_resolved(
        module: ModuleInfo, enclosing: str | None, callback: ast.expr
    ) -> None:
        attr = _self_attr(callback)
        if attr is not None and enclosing is not None:
            closure = closures.get(module.path, {})
            for class_name in sorted(closure.get(enclosing, {enclosing})):
                qualname = f"{class_name}.{attr}"
                decl = module.functions.get(qualname)
                if decl is not None:
                    roots.append((module, decl, qualname))
            return
        name = dotted_name(callback)
        if name is None:
            return
        for target_module, target_decl in resolver.resolve(module, None, name):
            roots.append((target_module, target_decl, target_decl.qualname))

    closures = {m.path: _subclass_closure(m) for m in modules}
    for module in modules:
        for decl in module.functions.values():
            enclosing = _enclosing_class(decl.qualname)
            for site in callback_calls(decl.node):
                suffix = _call_name(site).rsplit(".", 1)[-1]
                callback = site.args[CALLBACK_TAKERS[suffix]]
                if isinstance(callback, ast.Lambda):
                    # the lambda body runs per event: everything it calls
                    # is a root (the closure itself is P003's business)
                    wrapper = _lambda_as_function(callback)
                    for inner in ast.walk(wrapper):
                        if isinstance(inner, ast.Call):
                            add_resolved(module, enclosing, inner.func)
                    continue
                add_resolved(module, enclosing, callback)
        for qualname in ALWAYS_HOT_QUALNAMES:
            decl = module.functions.get(qualname)
            if decl is not None:
                roots.append((module, decl, qualname))
    return roots


def _profile_roots(
    modules: list[ModuleInfo], profile: PerfProfile
) -> list[tuple[ModuleInfo, FunctionDecl, str, int, float]]:
    """Profile handler keys matched back to static functions."""
    by_key: dict[str, tuple[ModuleInfo, FunctionDecl]] = {}
    for module in modules:
        dotted = module_dotted(module.path)
        for qualname, decl in module.functions.items():
            by_key[f"{dotted}.{qualname}"] = (module, decl)
    matched: list[tuple[ModuleInfo, FunctionDecl, str, int, float]] = []
    for key, (calls, seconds) in sorted(profile.handlers.items()):
        hit = by_key.get(key)
        if hit is not None:
            matched.append((hit[0], hit[1], hit[1].qualname, calls, seconds))
    return matched


def compute_hot_paths(
    modules: list[ModuleInfo], profile: PerfProfile | None = None
) -> HotPaths:
    """The hot set: static + profile roots, closed over resolvable callees."""
    resolver = _Resolver(modules)
    hot: dict[tuple[str, str], HotFunction] = {}
    worklist: list[tuple[str, str]] = []

    def admit(
        module: ModuleInfo,
        decl: FunctionDecl,
        root: str,
        depth: int,
        profiled: bool,
    ) -> None:
        key = (module.path, decl.qualname)
        existing = hot.get(key)
        if existing is not None:
            # keep the shortest path; a profiled root upgrades the label
            if profiled and not existing.profiled:
                existing.profiled = True
            if depth >= existing.depth:
                return
            existing.root, existing.depth = root, depth
            return
        hot[key] = HotFunction(
            module=module, decl=decl, root=root, depth=depth, profiled=profiled
        )
        worklist.append(key)

    for module, decl, label in _static_roots(modules, resolver):
        admit(module, decl, label, 0, False)
    if profile is not None:
        for module, decl, label, calls, seconds in _profile_roots(modules, profile):
            admit(module, decl, label, 0, True)
            entry = hot[(module.path, decl.qualname)]
            entry.calls, entry.seconds = calls, seconds

    while worklist:
        key = worklist.pop()
        entry = hot[key]
        if entry.depth >= _MAX_DEPTH:
            continue
        enclosing = _enclosing_class(entry.decl.qualname)
        callees: set[str] = set()
        for node in ast.walk(entry.decl.node):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name:
                    callees.add(name)
        for name in sorted(callees):
            for module, decl in resolver.resolve(entry.module, enclosing, name):
                admit(module, decl, entry.root, entry.depth + 1, entry.profiled)

    return HotPaths(hot, profile)
