"""Perf-rule registry and the hot-path analysis entry point.

:func:`analyze_perf` is the cost sibling of
:func:`repro.analysis.flow.engine.analyze_paths`: it loads the modules
once, infers the hot set (schedule-site callbacks, ``Node.receive``
reachability, and — when a ``BENCH_profile.json`` is supplied — the
profiled handler roots), runs the P-rules over every hot function, and
filters through the same inline-suppression syntax (``# repro:
allow[P001]``) and optional :class:`~repro.analysis.engine.SuppressionTracker`
the other engines use.  Accepted findings live in
``scripts/perf_baseline.json`` and self-shrink through U001 exactly like
the flow baseline.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from ..findings import Finding
from ..flow.core import ModuleInfo, load_modules
from .hotpath import PerfProfile, compute_hot_paths, load_profile
from .rules import PERF_CHECKS, PerfContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import SuppressionTracker


@dataclasses.dataclass(frozen=True, slots=True)
class PerfRule:
    """Registry metadata for one perf rule (the checks live in .rules)."""

    id: str
    summary: str
    rationale: str
    family: str  # always "perf"


PERF_RULES: dict[str, PerfRule] = {
    rule.id: rule
    for rule in (
        PerfRule(
            "P001",
            "unslotted class instantiated per event on a hot path",
            "a per-event __dict__ allocation at 250K pkt/s is pure "
            "allocator churn; __slots__ or a flyweight removes it "
            "(ROADMAP item 1)",
            "perf",
        ),
        PerfRule(
            "P002",
            "DNS wire message re-encoded on a hot path though its bytes "
            "cannot have changed",
            "most attack packets differ only in id/source; a memoized "
            "encoding or cached size turns an O(message) encode into a "
            "lookup",
            "perf",
        ),
        PerfRule(
            "P003",
            "per-event closure/lambda allocated at a schedule site on a "
            "hot path",
            "every lambda scheduled per packet allocates a fresh closure "
            "and cell objects; scheduling the bound method with its "
            "arguments is allocation-free",
            "perf",
        ),
        PerfRule(
            "P004",
            "unguarded string formatting or logging on a hot path",
            "f-strings and log calls pay their cost once per event even "
            "when no one reads the result; error paths are exempt",
            "perf",
        ),
        PerfRule(
            "P005",
            "O(n) scan (membership, sorted(), linear table walk) inside a "
            "per-packet handler",
            "a linear scan in the per-packet path multiplies n into the "
            "packet rate; dicts, buckets, or precomputed tables keep "
            "dispatch O(1)",
            "perf",
        ),
        PerfRule(
            "P006",
            "constant-delay heap push on a hot path — calendar-queue/"
            "bucket candidate",
            "fixed-offset schedule() calls dominate event-loop time in "
            "the profile; a calendar-queue lane makes them O(1) and is "
            "the core of the ROADMAP-1 rebuild",
            "perf",
        ),
    )
}


def _select(rule_ids: Iterable[str] | None) -> frozenset[str]:
    if rule_ids is None:
        return frozenset(PERF_RULES)
    selected = frozenset(rule_ids)
    unknown = sorted(selected - set(PERF_RULES))
    if unknown:
        raise KeyError(f"unknown perf rule ids: {', '.join(unknown)}")
    return selected


def analyze_perf(
    paths: Iterable[str | Path],
    *,
    rule_ids: Iterable[str] | None = None,
    tracker: "SuppressionTracker | None" = None,
    profile: str | Path | PerfProfile | None = None,
    modules: list[ModuleInfo] | None = None,
) -> list[Finding]:
    """Run the selected perf rules over every Python file under ``paths``.

    ``modules`` reuses an already-parsed module set (one parse per file
    across all rule families).

    ``profile`` is a ``BENCH_profile.json`` path (missing files are treated
    as "no profile"), or an already-parsed :class:`PerfProfile`.  The
    profile adds handler roots the static pass cannot see and marks their
    findings as profiled; it never suppresses static findings.
    """
    from ..engine import suppressed_rules

    selected = _select(rule_ids)
    if modules is None:
        modules = load_modules(paths)
    parsed_profile: PerfProfile | None
    if isinstance(profile, PerfProfile) or profile is None:
        parsed_profile = profile
    else:
        parsed_profile = load_profile(profile)
    hot_paths = compute_hot_paths(modules, parsed_profile)

    ctx = PerfContext(modules, hot_paths)
    findings: list[Finding] = []
    for entry in hot_paths.functions.values():
        for rule_id, check in PERF_CHECKS.items():
            if rule_id in selected:
                findings.extend(check(ctx, entry))

    if tracker is not None:
        tracker.note_rules(selected)
        for module in modules:
            tracker.register_source(module.path, module.source)
        kept = [f for f in findings if not tracker.is_suppressed(f)]
    else:
        allowed_by_path = {
            module.path: suppressed_rules(module.source) for module in modules
        }
        kept = [
            f
            for f in findings
            if f.rule not in allowed_by_path.get(f.path, {}).get(f.line, ())
        ]
    return sorted(kept, key=Finding.sort_key)


def perf_rule_table() -> str:
    """Plain-text rule table matching the lint CLI's ``--list-rules`` style."""
    lines = ["rule   summary", "-----  -------"]
    for rule_id in sorted(PERF_RULES):
        rule = PERF_RULES[rule_id]
        lines.append(f"{rule_id:<6} {rule.summary}")
        lines.append(f"       why: {rule.rationale}")
    return "\n".join(lines)
