"""The P-rule checks: per-event cost patterns inside the hot set.

Each check receives one hot function (see :mod:`.hotpath`) plus the shared
:class:`PerfContext` and yields findings.  Everything here is a *cost*
rule, not a correctness rule: a finding means "this allocates / encodes /
scans once per simulated event", and the fix-or-accept decision is
recorded either in code (the optimization), inline (``# repro:
allow[P00x] why``), or in ``scripts/perf_baseline.json`` (accepted debt —
typically the calendar-queue candidates ROADMAP item 1 will absorb).
"""

from __future__ import annotations

import ast
import dataclasses

from ..findings import Finding
from ..flow.core import ModuleInfo, _call_name
from .hotpath import CALLBACK_TAKERS, HotFunction, HotPaths, module_dotted

#: Modules the message-codec rule (P002) never fires in: the codec itself
#: is where encoding is supposed to happen.
_CODEC_PREFIX = "repro.dnswire"

#: Attribute calls that (re-)serialise a DNS message.
_ENCODE_METHODS = frozenset({"encode", "wire_size", "to_wire"})

#: Logger-ish receiver names for P004.
_LOGGER_NAMES = frozenset({"log", "logger", "logging"})
_LOG_METHODS = frozenset({"debug", "info", "warning", "error", "critical", "exception", "log"})

#: Base-class names that exempt a class from P001 (no per-event churn:
#: exceptions are exceptional, enums/protocols are never instantiated hot).
_P001_EXEMPT_BASES = frozenset(
    {"Exception", "Enum", "IntEnum", "IntFlag", "Flag", "Protocol", "NamedTuple", "TypedDict"}
)


@dataclasses.dataclass(slots=True)
class ClassSite:
    """One class definition as P001 sees it."""

    name: str
    path: str
    line: int
    slotted: bool
    exempt: bool


def _is_slots_dataclass(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    name = _call_name(decorator)
    if name.rsplit(".", 1)[-1] != "dataclass":
        return False
    return any(
        kw.arg == "slots"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in decorator.keywords
    )


def _classify_class(stmt: ast.ClassDef, path: str) -> ClassSite:
    slotted = any(_is_slots_dataclass(dec) for dec in stmt.decorator_list)
    for sub in stmt.body:
        targets: list[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = sub.targets
        elif isinstance(sub, ast.AnnAssign):
            targets = [sub.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                slotted = True
    exempt = False
    for base in stmt.bases:
        base_name = ""
        if isinstance(base, ast.Name):
            base_name = base.id
        elif isinstance(base, ast.Attribute):
            base_name = base.attr
        if base_name in _P001_EXEMPT_BASES or base_name.endswith(("Error", "Exception")):
            exempt = True
    return ClassSite(
        name=stmt.name, path=path, line=stmt.lineno, slotted=slotted, exempt=exempt
    )


class PerfContext:
    """Cross-module lookups shared by all P-rule checks."""

    def __init__(self, modules: list[ModuleInfo], hot: HotPaths):
        self.modules = modules
        self.hot = hot
        #: module path -> class name -> ClassSite
        self.classes: dict[str, dict[str, ClassSite]] = {}
        #: bare class name -> every ClassSite with that name
        self.classes_by_name: dict[str, list[ClassSite]] = {}
        #: (module path, class name) -> attr -> "mapping" | "sequence"
        self.attr_kinds: dict[tuple[str, str], dict[str, str]] = {}
        for module in modules:
            per_module: dict[str, ClassSite] = {}
            for stmt in module.tree.body:
                if not isinstance(stmt, ast.ClassDef):
                    continue
                site = _classify_class(stmt, module.path)
                per_module[site.name] = site
                self.classes_by_name.setdefault(site.name, []).append(site)
                self.attr_kinds[(module.path, site.name)] = _init_attr_kinds(stmt)
            self.classes[module.path] = per_module

    def class_for_call(self, module: ModuleInfo, name: str) -> ClassSite | None:
        """Resolve a constructor call: same module first, else a unique
        cross-module class with that bare name."""
        bare = name.rsplit(".", 1)[-1]
        local = self.classes.get(module.path, {}).get(bare)
        if local is not None:
            return local
        candidates = self.classes_by_name.get(bare, [])
        return candidates[0] if len(candidates) == 1 else None

    def attr_kind(self, module: ModuleInfo, class_name: str | None, attr: str) -> str | None:
        if class_name is None:
            return None
        return self.attr_kinds.get((module.path, class_name), {}).get(attr)


def _init_attr_kinds(stmt: ast.ClassDef) -> dict[str, str]:
    """``self.X = {} / set() / []`` evidence from ``__init__``: tells P005
    whether a membership test against ``self.X`` is O(1) or O(n)."""
    kinds: dict[str, str] = {}
    init = next(
        (
            sub
            for sub in stmt.body
            if isinstance(sub, ast.FunctionDef) and sub.name == "__init__"
        ),
        None,
    )
    if init is None:
        return kinds
    for node in ast.walk(init):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        kind: str | None = None
        if isinstance(value, (ast.Dict, ast.DictComp, ast.SetComp, ast.Set)):
            kind = "mapping"
        elif isinstance(value, (ast.List, ast.ListComp, ast.Tuple)):
            kind = "sequence"
        elif isinstance(value, ast.Call):
            callee = _call_name(value).rsplit(".", 1)[-1]
            if callee in ("dict", "set", "defaultdict", "Counter", "OrderedDict"):
                kind = "mapping"
            elif callee in ("list", "tuple", "deque", "sorted"):
                kind = "sequence"
        if kind is None:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                kinds.setdefault(target.attr, kind)
    return kinds


def _error_path_nodes(func: ast.AST) -> set[int]:
    """ids of every node inside a raise/assert/except subtree — strings
    formatted only on error paths are not per-event costs."""
    marked: set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Raise, ast.Assert, ast.ExceptHandler)):
            for sub in ast.walk(node):
                marked.add(id(sub))
    return marked


def _finding(hot: HotFunction, node: ast.AST, rule: str, message: str) -> Finding:
    return Finding(
        path=hot.module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=f"{message} [{hot.decl.qualname}: {hot.describe()}]",
    )


# -- P001: per-event instantiation of an unslotted class ----------------------


def check_unslotted_instantiation(ctx: PerfContext, hot: HotFunction) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[str] = set()
    for node in ast.walk(hot.decl.node):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if not name:
            continue
        site = ctx.class_for_call(hot.module, name)
        if site is None or site.slotted or site.exempt or site.name in reported:
            continue
        reported.add(site.name)
        findings.append(
            _finding(
                hot,
                node,
                "P001",
                f"instantiates {site.name} (defined without __slots__ at "
                f"{site.path}:{site.line}) once per event — give it "
                "__slots__ or reuse a flyweight",
            )
        )
    return findings


# -- P002: re-encoding a DNS message on the hot path --------------------------


def check_reencoding(ctx: PerfContext, hot: HotFunction) -> list[Finding]:
    if module_dotted(hot.module.path).startswith(_CODEC_PREFIX):
        return []
    findings: list[Finding] = []
    for node in ast.walk(hot.decl.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _ENCODE_METHODS
        ):
            findings.append(
                _finding(
                    hot,
                    node,
                    "P002",
                    f".{node.func.attr}() serialises a DNS message once per "
                    "event; most per-packet messages differ only in id/"
                    "source — memoize the encoding (Message.freeze) or pass "
                    "a cached size",
                )
            )
    return findings


# -- P003: per-event closure allocation at a schedule site --------------------


def check_closure_callbacks(ctx: PerfContext, hot: HotFunction) -> list[Finding]:
    findings: list[Finding] = []
    for site in _callback_sites(hot.decl.node):
        suffix = _call_name(site).rsplit(".", 1)[-1]
        callback = site.args[CALLBACK_TAKERS[suffix]]
        label: str | None = None
        if isinstance(callback, ast.Lambda):
            label = "a lambda"
        elif (
            isinstance(callback, ast.Call)
            and _call_name(callback).rsplit(".", 1)[-1] == "partial"
        ):
            label = "a functools.partial"
        if label is None:
            continue
        findings.append(
            _finding(
                hot,
                callback,
                "P003",
                f"schedules {label} allocated per event — pass the bound "
                "method and its arguments to schedule() directly",
            )
        )
    return findings


def _callback_sites(func: ast.AST) -> list[ast.Call]:
    sites: list[ast.Call] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        suffix = _call_name(node).rsplit(".", 1)[-1]
        if suffix in CALLBACK_TAKERS and len(node.args) > CALLBACK_TAKERS[suffix]:
            sites.append(node)
    return sites


# -- P004: unguarded formatting / logging on the hot path ---------------------


def check_formatting(ctx: PerfContext, hot: HotFunction) -> list[Finding]:
    findings: list[Finding] = []
    error_paths = _error_path_nodes(hot.decl.node)
    for node in ast.walk(hot.decl.node):
        if id(node) in error_paths:
            continue
        if isinstance(node, ast.JoinedStr):
            findings.append(
                _finding(
                    hot,
                    node,
                    "P004",
                    "f-string formatted once per event even when nobody "
                    "reads it — build the string lazily or only on error "
                    "paths",
                )
            )
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            parts = name.split(".")
            if name == "print":
                findings.append(
                    _finding(
                        hot,
                        node,
                        "P004",
                        "print() on the hot path blocks the event loop on "
                        "I/O once per event",
                    )
                )
            elif (
                len(parts) >= 2
                and parts[-2] in _LOGGER_NAMES
                and parts[-1] in _LOG_METHODS
            ):
                findings.append(
                    _finding(
                        hot,
                        node,
                        "P004",
                        f"{name}() runs once per event even when the level "
                        "is disabled — guard it or log outside the hot path",
                    )
                )
    return findings


# -- P005: O(n) scans inside per-packet handlers ------------------------------


def check_linear_scans(ctx: PerfContext, hot: HotFunction) -> list[Finding]:
    findings: list[Finding] = []
    enclosing = (
        hot.decl.qualname.split(".", 1)[0] if "." in hot.decl.qualname else None
    )
    for node in ast.walk(hot.decl.node):
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            container = node.comparators[-1]
            if not isinstance(container, ast.Attribute):
                continue
            attr_owner = container.value
            attr_kind = None
            if isinstance(attr_owner, ast.Name) and attr_owner.id in ("self", "cls"):
                attr_kind = ctx.attr_kind(hot.module, enclosing, container.attr)
            if attr_kind == "mapping":
                continue  # dict/set membership is O(1); no scan here
            findings.append(
                _finding(
                    hot,
                    node,
                    "P005",
                    f"membership test over .{container.attr} scans a "
                    "sequence once per event — use a dict/set or a "
                    "precomputed table",
                )
            )
        elif isinstance(node, ast.Call):
            name = _call_name(node).rsplit(".", 1)[-1]
            if name in ("sorted", "sort"):
                findings.append(
                    _finding(
                        hot,
                        node,
                        "P005",
                        f"{name}() inside a per-packet handler is O(n log n) "
                        "per event — keep the structure ordered incrementally",
                    )
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if not isinstance(node.iter, ast.Attribute):
                continue
            has_return = any(
                isinstance(sub, ast.Return) for sub in ast.walk(node)
            )
            if not has_return:
                continue
            findings.append(
                _finding(
                    hot,
                    node,
                    "P005",
                    f"linear search over .{node.iter.attr} once per event — "
                    "index it (dict keyed by the match field) or cache the "
                    "lookup",
                )
            )
    return findings


# -- P006: constant-delay heap pushes (calendar-queue candidates) -------------


def _is_constant_shaped(expr: ast.expr) -> bool:
    """No calls anywhere in the delay expression: the offset is a constant,
    an attribute, or arithmetic over them — exactly what a calendar queue
    bucket absorbs in O(1)."""
    return not any(isinstance(node, ast.Call) for node in ast.walk(expr))


def check_constant_delay_pushes(ctx: PerfContext, hot: HotFunction) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(hot.decl.node):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        suffix = name.rsplit(".", 1)[-1]
        if suffix not in ("schedule", "schedule_at") or len(node.args) < 2:
            continue
        if not _is_constant_shaped(node.args[0]):
            continue
        findings.append(
            _finding(
                hot,
                node,
                "P006",
                f"{suffix}() with a constant-shaped delay pushes into the "
                "binary heap once per event — a calendar-queue/bucket lane "
                "would make this O(1) (ROADMAP item 1)",
            )
        )
    return findings


#: rule id -> check function, in reporting order.
PERF_CHECKS = {
    "P001": check_unslotted_instantiation,
    "P002": check_reencoding,
    "P003": check_closure_callbacks,
    "P004": check_formatting,
    "P005": check_linear_scans,
    "P006": check_constant_delay_pushes,
}
