"""Profile-guided hot-path cost analysis (the P-rules).

The perf layer is the cost counterpart of the T/S (flow) and R (races)
layers: it computes the hot-path call graph from schedule-site callbacks
and ``Node.receive`` reachability, optionally weights it with the handler
timings in ``scripts/BENCH_profile.json``, and reports per-event cost patterns —
unslotted allocations, redundant wire encodings, closure churn, unguarded
formatting, O(n) scans and constant-delay heap pushes — so the ROADMAP-1
optimization arc has both a worklist and a regression gate.

See DESIGN.md ("Hot-path cost model") for the hot-path definition and the
rule-to-optimization map.
"""

from .engine import PERF_RULES, PerfRule, analyze_perf, perf_rule_table
from .hotpath import (
    HotFunction,
    HotPaths,
    PerfProfile,
    compute_hot_paths,
    load_profile,
    module_dotted,
)

__all__ = [
    "PERF_RULES",
    "PerfRule",
    "analyze_perf",
    "perf_rule_table",
    "HotFunction",
    "HotPaths",
    "PerfProfile",
    "compute_hot_paths",
    "load_profile",
    "module_dotted",
]
