"""Shared-state declarations: which attributes the race rules watch.

A module *self-describes* its simultaneity-sensitive state by declaring a
module-level literal named ``__shared_state__``, next to its
``__trust_boundary__``.  The race analyser reads the declaration
**statically** (``ast.literal_eval`` on the assignment) for R001/R002 and
**at runtime** (plain attribute access on the imported module) for the
interference monitor behind R003/R004::

    __shared_state__ = {
        "RemoteDnsGuard": {
            "guarded": ["_pending", "_answer_cache", "down"],
            "commutative": ["queries_seen", "invalid_drops"],
        },
    }

Field semantics:

``guarded``
    Attributes whose value two same-instant handlers must not race on:
    soft-state tables (cookie caches, pending-verification maps, TCP
    connection buckets), mode flags, timer handles.  Any write/write or
    read/write overlap inside a tie group is a finding.
``commutative``
    Attributes whose concurrent updates commute by construction —
    monotone counters and gauges (``x += 1`` from two handlers yields the
    same state in either order).  They are tracked for declaration
    completeness (R002) but exempt from the conflict rules R001/R003/R004.

Attributes not listed at all are *undeclared*: the static pass flags
writes to them from scheduled code in declared classes (R002), forcing
the declaration to stay complete as the class grows.
"""

from __future__ import annotations

import ast
import dataclasses

from ..declarations import find_declaration_dict

DECL_NAME = "__shared_state__"


@dataclasses.dataclass(frozen=True, slots=True)
class SharedStateDecl:
    """Declared shared-state cells for one class."""

    class_name: str
    guarded: frozenset[str]
    commutative: frozenset[str]

    @property
    def all_attrs(self) -> frozenset[str]:
        return self.guarded | self.commutative


def find_declaration(tree: ast.AST) -> dict | None:
    """The module's ``__shared_state__`` literal, or None."""
    found = find_declaration_dict(tree, DECL_NAME)
    return found[0] if found is not None else None


def parse_declaration(raw: dict | None) -> dict[str, SharedStateDecl]:
    """Normalise a raw ``__shared_state__`` dict to per-class decls."""
    if not isinstance(raw, dict):
        return {}
    decls: dict[str, SharedStateDecl] = {}
    for class_name, spec in raw.items():
        if not isinstance(spec, dict):
            continue
        decls[str(class_name)] = SharedStateDecl(
            class_name=str(class_name),
            guarded=frozenset(str(a) for a in spec.get("guarded", ())),
            commutative=frozenset(str(a) for a in spec.get("commutative", ())),
        )
    return decls


def declarations_for_module(tree: ast.AST) -> dict[str, SharedStateDecl]:
    """Static read: class name -> declaration for one parsed module."""
    return parse_declaration(find_declaration(tree))
