"""Virtual-time race detection for the discrete-event simulator.

Three cooperating layers over the simultaneity contract documented in
DESIGN.md ("Simultaneity semantics"):

* :mod:`.effects` — static effect inference over scheduled callbacks
  (rules R001/R002), driven by ``__shared_state__`` declarations
  (:mod:`.declarations`);
* :mod:`.runtime` — the dynamic interference sanitizer observing real
  tie groups through :func:`repro.netsim.set_tie_hook` (R003/R004);
* :mod:`.explore` — DPOR-lite schedule exploration asserting canonical
  trace invariance under permutations of conflicting tie groups.
"""

from .declarations import SharedStateDecl, declarations_for_module
from .engine import RACE_RULES, analyze_races, race_rule_table
from .explore import ExploreReport, explore
from .runtime import InterferenceMonitor, RaceReport, run_monitored

__all__ = [
    "RACE_RULES",
    "ExploreReport",
    "InterferenceMonitor",
    "RaceReport",
    "SharedStateDecl",
    "analyze_races",
    "declarations_for_module",
    "explore",
    "race_rule_table",
    "run_monitored",
]
