"""Static effect inference over scheduled callbacks (R001/R002).

For every callback the source tree passes to ``Simulator.schedule`` /
``schedule_at`` we compute a may-read/may-write *effect set* over the
shared-state cells declared via ``__shared_state__`` (see
:mod:`.declarations`).  A static cell is class-qualified —
``"RemoteDnsGuard._pending"`` — so two classes sharing an attribute name
never alias, but the pass still cannot tell two *instances* of one class
apart; a cell is "some RemoteDnsGuard's ``_pending``", and the dynamic
monitor (R003/R004) is the layer that distinguishes owners.  Effects
propagate transitively through callees using the same name-index
resolution the taint engine uses.

Two rules fall out:

* **R001** — two *different* handlers, schedulable in the same priority
  lane, have statically overlapping write sets over guarded cells.  The
  scheduler places any two timer expirations at equal virtual time, so an
  overlapping pair is an order-dependence hazard unless the pair is
  ordered by lane contract (``priority=BOUNDARY_PRIORITY``) or documented
  with an inline ``# repro: allow[R001]``.  Self-pairs (the same handler
  scheduled twice, e.g. a periodic sweep) are not reported: statically
  they always self-overlap, and the instances that actually collide run
  on distinct owners the dynamic layer can see.
* **R002** — shared-state discipline: a module on the required list with
  no ``__shared_state__`` declaration, or a declared class writing an
  undeclared attribute outside ``__init__``.

The static layer is deliberately incomplete: callbacks reached through
runtime indirection (``link.schedule(..., receiver.receive, packet)``
where ``receiver`` is any node) resolve only when the bare name is
unique.  The dynamic interference sanitizer covers what this pass cannot
see; this pass covers orders the dynamic run never executed.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path

from ..findings import Finding
from ..rules import dotted_name
from .declarations import SharedStateDecl, declarations_for_module
from ..flow.core import (
    FunctionDecl,
    ModuleInfo,
    NameIndex,
    _call_name,
)

#: Method names that mutate their receiver (dict/set/list soft state).
_MUTATOR_METHODS = frozenset(
    {
        "pop",
        "clear",
        "update",
        "setdefault",
        "popitem",
        "append",
        "add",
        "remove",
        "discard",
        "extend",
        "insert",
    }
)

#: Scheduler entry points, matched on the call's dotted suffix.
_SCHEDULE_NAMES = frozenset({"schedule", "schedule_at"})

#: Effect-propagation passes across the call graph (chains are shallow —
#: handler -> helper -> table mutation).
_EFFECT_PASSES = 3

#: Path suffixes that must carry a ``__shared_state__`` declaration:
#: every module whose classes own soft state that scheduled handlers
#: mutate.  Grown alongside the declarations themselves.
REQUIRED_DECLARATIONS: tuple[str, ...] = (
    str(Path("guard") / "pipeline.py"),
    str(Path("guard") / "local_guard.py"),
    str(Path("guard") / "tcp_scheme.py"),
    str(Path("guard") / "core" / "ratelimit.py"),
    str(Path("guard") / "core" / "admission.py"),
    str(Path("faults") / "plan.py"),
    str(Path("control") / "controller.py"),
    str(Path("control") / "actuators.py"),
    str(Path("control") / "signals.py"),
)


@dataclasses.dataclass(slots=True)
class EffectSet:
    """May-read/may-write attribute names for one function."""

    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()

    def __or__(self, other: "EffectSet") -> "EffectSet":
        return EffectSet(self.reads | other.reads, self.writes | other.writes)


@dataclasses.dataclass(slots=True)
class ScheduleSite:
    """One ``sim.schedule(...)`` call and what its callback may touch."""

    path: str
    line: int
    col: int
    lane: str  # "default" | "boundary"
    callbacks: tuple[str, ...]  # resolved handler qualnames (or "<lambda>")
    effects: EffectSet


def _decl_index(modules: list[ModuleInfo]) -> dict[str, dict[str, SharedStateDecl]]:
    """module path -> class name -> declaration."""
    return {m.path: declarations_for_module(m.tree) for m in modules}


def _watched_cells(
    decls: dict[str, dict[str, SharedStateDecl]],
) -> tuple[frozenset[str], frozenset[str]]:
    """(all declared cells, the commutative subset), class-qualified.

    A static cell is ``"ClassName.attr"`` — qualified by the *declaring*
    class so two classes that happen to share an attribute name (both
    guards keep a ``_sweeper`` handle) never alias.
    """
    watched: set[str] = set()
    commutative: set[str] = set()
    for per_class in decls.values():
        for decl in per_class.values():
            for attr in decl.guarded:
                watched.add(f"{decl.class_name}.{attr}")
            for attr in decl.commutative:
                cell = f"{decl.class_name}.{attr}"
                watched.add(cell)
                commutative.add(cell)
    return frozenset(watched), frozenset(commutative)


def _self_attr(node: ast.expr) -> str | None:
    """``self.X``/``cls.X`` -> ``X`` (one attribute hop only)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    ):
        return node.attr
    return None


def _direct_effects(
    decl: FunctionDecl, watched: frozenset[str], class_name: str | None
) -> tuple[EffectSet, frozenset[str]]:
    """(direct effects on watched cells, bare callee names) for one function.

    ``class_name`` qualifies ``self.X`` accesses: a method of ``C`` touches
    cell ``"C.X"``, which only counts when that exact cell is declared.
    """
    reads: set[str] = set()
    writes: set[str] = set()
    callees: set[str] = set()

    def cell_for(attr: str | None) -> str | None:
        if attr is None or class_name is None:
            return None
        cell = f"{class_name}.{attr}"
        return cell if cell in watched else None

    for node in ast.walk(decl.node):
        if isinstance(node, ast.Attribute):
            cell = cell_for(_self_attr(node))
            if cell is not None:
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    writes.add(cell)
                else:
                    reads.add(cell)
        elif isinstance(node, ast.Subscript):
            cell = cell_for(_self_attr(node.value))
            if cell is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
                writes.add(cell)
        elif isinstance(node, ast.AugAssign):
            cell = cell_for(_self_attr(node.target))
            if cell is not None:
                reads.add(cell)
                writes.add(cell)
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if name:
                callees.add(name)
            if isinstance(node.func, ast.Attribute) and (
                node.func.attr in _MUTATOR_METHODS
            ):
                cell = cell_for(_self_attr(node.func.value))
                if cell is not None:
                    reads.add(cell)
                    writes.add(cell)
    return EffectSet(frozenset(reads), frozenset(writes)), frozenset(callees)


def _class_of(qualname: str) -> str | None:
    return qualname.split(".", 1)[0] if "." in qualname else None


def build_effects(
    modules: list[ModuleInfo],
    index: NameIndex,
    watched: frozenset[str],
) -> dict[tuple[str, str], EffectSet]:
    """Fixpoint per-function effect sets, callee effects folded in."""
    direct: dict[tuple[str, str], tuple[EffectSet, frozenset[str]]] = {}
    for module in modules:
        for decl in module.functions.values():
            direct[(module.path, decl.qualname)] = _direct_effects(
                decl, watched, _class_of(decl.qualname)
            )

    effects = {key: value[0] for key, value in direct.items()}
    for _ in range(_EFFECT_PASSES):
        changed = False
        for module in modules:
            for decl in module.functions.values():
                key = (module.path, decl.qualname)
                combined = direct[key][0]
                for callee in direct[key][1]:
                    resolved = index.resolve(module, callee)
                    if resolved is None:
                        continue
                    callee_key = (resolved[0].path, resolved[1].qualname)
                    combined = combined | effects.get(callee_key, EffectSet())
                if effects[key] != combined:
                    effects[key] = combined
                    changed = True
        if not changed:
            break
    return effects


def _subclass_closure(module: ModuleInfo) -> dict[str, set[str]]:
    """class name -> {itself and every (transitive) same-module subclass}."""
    bases: dict[str, set[str]] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.ClassDef):
            bases[stmt.name] = {
                base.id for base in stmt.bases if isinstance(base, ast.Name)
            }
    closure: dict[str, set[str]] = {name: {name} for name in bases}
    for _ in range(len(bases)):
        changed = False
        for name, parents in bases.items():
            for parent in parents:
                if parent in closure and name not in closure[parent]:
                    closure[parent].add(name)
                    changed = True
        if not changed:
            break
    return closure


def _is_boundary_priority(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int) and node.value < 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return True
    name = dotted_name(node) or ""
    return name.rsplit(".", 1)[-1] == "BOUNDARY_PRIORITY"


class _SiteCollector:
    """Finds schedule calls and resolves their callbacks to functions."""

    def __init__(
        self,
        modules: list[ModuleInfo],
        index: NameIndex,
        effects: dict[tuple[str, str], EffectSet],
        watched: frozenset[str],
    ):
        self.modules = modules
        self.index = index
        self.effects = effects
        self.watched = watched

    def collect(self) -> list[ScheduleSite]:
        sites: list[ScheduleSite] = []
        for module in self.modules:
            closure = _subclass_closure(module)
            for decl in module.functions.values():
                enclosing = (
                    decl.qualname.split(".", 1)[0] if "." in decl.qualname else None
                )
                for node in ast.walk(decl.node):
                    if not isinstance(node, ast.Call):
                        continue
                    name = _call_name(node)
                    suffix = name.rsplit(".", 1)[-1]
                    if suffix not in _SCHEDULE_NAMES or len(node.args) < 2:
                        continue
                    site = self._site_for(module, closure, enclosing, node)
                    if site is not None:
                        sites.append(site)
        sites.sort(key=lambda s: (s.path, s.line, s.col))
        return sites

    def _site_for(
        self,
        module: ModuleInfo,
        closure: dict[str, set[str]],
        enclosing: str | None,
        node: ast.Call,
    ) -> ScheduleSite | None:
        callback = node.args[1]
        lane = "default"
        for keyword in node.keywords:
            if keyword.arg == "priority" and _is_boundary_priority(keyword.value):
                lane = "boundary"
        resolved = self._resolve_callback(module, closure, enclosing, callback)
        if resolved is None:
            return None
        labels, effect = resolved
        return ScheduleSite(
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            lane=lane,
            callbacks=labels,
            effects=effect,
        )

    def _resolve_callback(
        self,
        module: ModuleInfo,
        closure: dict[str, set[str]],
        enclosing: str | None,
        callback: ast.expr,
    ) -> tuple[tuple[str, ...], EffectSet] | None:
        if isinstance(callback, ast.Lambda):
            wrapper = FunctionDecl(
                "<lambda>", _lambda_as_function(callback), []
            )
            effect, _ = _direct_effects(wrapper, self.watched, enclosing)
            return ("<lambda>",), effect

        attr = _self_attr(callback)
        if attr is not None and enclosing is not None:
            # `self.m`: the method on the enclosing class — or, for the
            # template-method idiom (FaultAction.schedule scheduling
            # self.start), on any same-module subclass.
            candidates: list[tuple[str, EffectSet]] = []
            for class_name in sorted(closure.get(enclosing, {enclosing})):
                qualname = f"{class_name}.{attr}"
                if qualname in module.functions:
                    candidates.append(
                        (
                            qualname,
                            self.effects.get((module.path, qualname), EffectSet()),
                        )
                    )
            if candidates:
                combined = EffectSet()
                for _, effect in candidates:
                    combined = combined | effect
                return tuple(label for label, _ in candidates), combined
            return None

        name = dotted_name(callback)
        if name is None:
            return None
        resolved = self.index.resolve(module, name)
        if resolved is None:
            return None
        target_module, target_decl = resolved
        effect = self.effects.get(
            (target_module.path, target_decl.qualname), EffectSet()
        )
        return (target_decl.qualname,), effect


def _lambda_as_function(node: ast.Lambda) -> ast.FunctionDef:
    """Wrap a lambda body so the effect extractor can walk it."""
    wrapper = ast.FunctionDef(
        name="<lambda>",
        args=node.args,
        body=[ast.Return(value=node.body)],
        decorator_list=[],
        returns=None,
        type_params=[],
    )
    return ast.fix_missing_locations(ast.copy_location(wrapper, node))


def collect_schedule_sites(
    modules: list[ModuleInfo], index: NameIndex
) -> tuple[list[ScheduleSite], frozenset[str]]:
    """(resolved schedule sites, commutative attr names) for ``modules``."""
    decls = _decl_index(modules)
    watched, commutative = _watched_cells(decls)
    effects = build_effects(modules, index, watched)
    sites = _SiteCollector(modules, index, effects, watched).collect()
    return sites, commutative


def _guarded_writes(site: ScheduleSite, commutative: frozenset[str]) -> frozenset[str]:
    return site.effects.writes - commutative


def check_write_overlaps(
    sites: list[ScheduleSite], commutative: frozenset[str]
) -> list[Finding]:
    """R001: same-lane handler pairs with overlapping guarded write sets."""
    findings: list[Finding] = []
    seen: set[tuple] = set()
    for i, first in enumerate(sites):
        first_writes = _guarded_writes(first, commutative)
        if not first_writes:
            continue
        for second in sites[i + 1 :]:
            if second.lane != first.lane:
                continue
            if set(second.callbacks) == set(first.callbacks):
                continue  # self-pair: same handler, periodic reschedule
            overlap = first_writes & _guarded_writes(second, commutative)
            if not overlap:
                continue
            key = (
                tuple(sorted(first.callbacks)),
                tuple(sorted(second.callbacks)),
                tuple(sorted(overlap)),
            )
            if key in seen or (key[1], key[0], key[2]) in seen:
                continue
            seen.add(key)
            findings.append(
                Finding(
                    path=first.path,
                    line=first.line,
                    col=first.col,
                    rule="R001",
                    message=(
                        f"handlers {'/'.join(first.callbacks)} and "
                        f"{'/'.join(second.callbacks)} (scheduled at "
                        f"{second.path}:{second.line}) may both write shared "
                        f"state {{{', '.join(sorted(overlap))}}} in the same "
                        f"instant; order them with a priority lane or document "
                        f"the commutativity"
                    ),
                )
            )
    return findings


def check_declarations(modules: list[ModuleInfo]) -> list[Finding]:
    """R002: missing module declarations and undeclared attribute writes."""
    findings: list[Finding] = []
    for module in modules:
        decls = declarations_for_module(module.tree)
        required = any(module.path.endswith(sfx) for sfx in REQUIRED_DECLARATIONS)
        if required and not decls:
            findings.append(
                Finding(
                    path=module.path,
                    line=1,
                    col=0,
                    rule="R002",
                    message=(
                        "module owns scheduler-visible shared state but "
                        "declares no __shared_state__ (see "
                        "repro.analysis.races.declarations)"
                    ),
                )
            )
            continue
        if not decls:
            continue
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.ClassDef) or stmt.name not in decls:
                continue
            declared = decls[stmt.name].all_attrs
            for sub in stmt.body:
                if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if sub.name == "__init__":
                    continue
                findings.extend(
                    _undeclared_writes(module.path, stmt.name, sub, declared)
                )
    return findings


def _undeclared_writes(
    path: str,
    class_name: str,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    declared: frozenset[str],
) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[str] = set()
    for node in ast.walk(func):
        attr: str | None = None
        if isinstance(node, ast.Attribute) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            attr = _self_attr(node)
        elif isinstance(node, ast.AugAssign):
            attr = _self_attr(node.target)
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            attr = _self_attr(node.value)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) and (
            node.func.attr in _MUTATOR_METHODS
        ):
            attr = _self_attr(node.func.value)
        if attr is None or attr in declared or attr in reported:
            continue
        reported.add(attr)
        findings.append(
            Finding(
                path=path,
                line=node.lineno,
                col=node.col_offset,
                rule="R002",
                message=(
                    f"{class_name}.{func.name} writes self.{attr}, which is "
                    f"not in {class_name}'s __shared_state__ declaration — "
                    "declare it guarded or commutative"
                ),
            )
        )
    return findings
