"""Dynamic interference sanitizer: tie-group footprints at runtime.

The static pass (R001/R002) sees attribute *names*; this monitor sees
*instances*.  It installs the :func:`repro.netsim.set_tie_hook` hook, and
for every tie group — events popped at equal ``(time, priority)`` — it
records each handler's read/write footprint over the state declared in
``__shared_state__``, then reports

* **R003** when two handlers in one group wrote an overlapping cell, and
* **R004** when one read a cell another wrote,

with both events' provenance: handler label, scheduling call site, and
argument digests (node/packet identity).  A *cell* is
``(owner instance, attribute)`` for scalars and
``(owner instance, attribute, key)`` for dict entries, so two guards
sweeping their own tables never alias.

Observation discipline (the W002 contract): the monitor must not change
the event sequence.  It patches the declared classes'
``__getattribute__``/``__setattr__`` in place (restored on uninstall),
records only while a multi-event tie group is executing, never schedules,
and never draws randomness.  Dict-valued guarded attributes are lazily
replaced with a :class:`TrackedDict` — a ``dict`` subclass with identical
semantics and a ``trace_digest`` pinned to ``"dict"`` so trace hashes are
unaffected.

Entry points: :func:`run_monitored`, or ``python -m repro <cmd> --races``.
"""

from __future__ import annotations

import dataclasses
import importlib
import pkgutil
from collections import OrderedDict
from typing import Any, Callable

from ...netsim.simulator import Simulator, TieEvent, _describe_callback, _describe_value, set_tie_hook
from ..findings import Finding
from .declarations import DECL_NAME, SharedStateDecl, parse_declaration

#: Wildcard key: the whole-container footprint (iteration, clear, len).
WILDCARD = "*"

Cell = tuple  # (owner_label, attr, key) — key None for scalars


def discover_declared_classes(
    package: str = "repro",
) -> list[tuple[type, SharedStateDecl]]:
    """Import ``package`` recursively and collect declared classes.

    Modules that fail to import (optional deps, scripts) are skipped —
    the static R002 pass is what enforces declaration presence.
    """
    root = importlib.import_module(package)
    module_names = [package]
    for info in pkgutil.walk_packages(root.__path__, prefix=package + "."):
        # __main__ modules run their CLI at import time — never import them
        if info.name.rsplit(".", 1)[-1] == "__main__":
            continue
        module_names.append(info.name)
    found: list[tuple[type, SharedStateDecl]] = []
    seen: set[type] = set()
    for name in module_names:
        try:
            module = importlib.import_module(name)
        except Exception:  # pragma: no cover - optional/broken module
            continue
        decls = parse_declaration(getattr(module, DECL_NAME, None))
        for class_name, decl in sorted(decls.items()):
            cls = getattr(module, class_name, None)
            if isinstance(cls, type) and cls not in seen:
                seen.add(cls)
                found.append((cls, decl))
    return found


class _TrackedOps:
    """Footprint instrumentation shared by the tracked containers.

    Mixed in ahead of ``dict`` / ``OrderedDict`` so ``super()`` resolves
    to the real container: semantics are untouched, every op just reports
    its key-granular footprint first.  (The data slots live on the
    concrete classes — a non-empty ``__slots__`` here would conflict with
    the container base's instance layout.)
    """

    __slots__ = ()

    def __init__(self, data: dict, mon: "InterferenceMonitor", owner: str, attr: str):
        # fields first: OrderedDict.__init__ populates via __setitem__,
        # which already consults the instrumentation (mon._busy is held by
        # the lazy swap, so construction leaves no footprint)
        self._mon = mon
        self._owner = owner
        self._attr = attr
        super().__init__(data)

    def trace_digest(self) -> str:
        # pinned so EventTrace descriptions match an untracked dict's
        return "dict"

    # -- reads -------------------------------------------------------------

    def __getitem__(self, key):
        self._mon.note_cell(self._owner, self._attr, key, write=False)
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._mon.note_cell(self._owner, self._attr, key, write=False)
        return super().get(key, default)

    def __contains__(self, key):
        self._mon.note_cell(self._owner, self._attr, key, write=False)
        return super().__contains__(key)

    def __iter__(self):
        self._mon.note_cell(self._owner, self._attr, WILDCARD, write=False)
        return super().__iter__()

    def __len__(self):
        self._mon.note_cell(self._owner, self._attr, WILDCARD, write=False)
        return super().__len__()

    def keys(self):
        self._mon.note_cell(self._owner, self._attr, WILDCARD, write=False)
        return super().keys()

    def values(self):
        self._mon.note_cell(self._owner, self._attr, WILDCARD, write=False)
        return super().values()

    def items(self):
        self._mon.note_cell(self._owner, self._attr, WILDCARD, write=False)
        return super().items()

    # -- writes ------------------------------------------------------------

    def __setitem__(self, key, value):
        self._mon.note_cell(self._owner, self._attr, key, write=True)
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._mon.note_cell(self._owner, self._attr, key, write=True)
        super().__delitem__(key)

    def pop(self, key, *default):
        self._mon.note_cell(self._owner, self._attr, key, write=False)
        self._mon.note_cell(self._owner, self._attr, key, write=True)
        return super().pop(key, *default)

    def popitem(self, *args, **kwargs):
        self._mon.note_cell(self._owner, self._attr, WILDCARD, write=True)
        return super().popitem(*args, **kwargs)

    def clear(self):
        self._mon.note_cell(self._owner, self._attr, WILDCARD, write=True)
        super().clear()

    def update(self, *args, **kwargs):
        other = args[0] if args else ()
        keys = other.keys() if isinstance(other, dict) else None
        if keys is None:
            self._mon.note_cell(self._owner, self._attr, WILDCARD, write=True)
        else:
            for key in keys:
                self._mon.note_cell(self._owner, self._attr, key, write=True)
            for key in kwargs:
                self._mon.note_cell(self._owner, self._attr, key, write=True)
        super().update(*args, **kwargs)

    def setdefault(self, key, default=None):
        self._mon.note_cell(self._owner, self._attr, key, write=False)
        if key not in dict.keys(self):
            self._mon.note_cell(self._owner, self._attr, key, write=True)
        return super().setdefault(key, default)


class TrackedDict(_TrackedOps, dict):
    """A ``dict`` that reports key-granular footprints to the monitor."""

    __slots__ = ("_mon", "_owner", "_attr")


class TrackedOrderedDict(_TrackedOps, OrderedDict):
    """An ``OrderedDict`` proxy: ordering ops are whole-table writes.

    ``move_to_end`` mutates the order an LRU eviction will follow, so it
    counts as a wildcard write even though no key's value changes.
    """

    __slots__ = ("_mon", "_owner", "_attr")

    def move_to_end(self, key, last=True):
        self._mon.note_cell(self._owner, self._attr, WILDCARD, write=True)
        super().move_to_end(key, last=last)


#: Exact container type -> its tracked proxy (subclasses other than these
#: are left unwrapped and fall back to scalar-cell tracking).
_TRACKED_TYPES: dict[type, type] = {
    dict: TrackedDict,
    OrderedDict: TrackedOrderedDict,
}


def _overlap(a: set[Cell], b: set[Cell]) -> set[Cell]:
    """Conflicting cells between two footprints, wildcard-aware."""
    out: set[Cell] = set()
    index_b: dict[tuple, set] = {}
    for owner, attr, key in b:
        index_b.setdefault((owner, attr), set()).add(key)
    for owner, attr, key in a:
        keys_b = index_b.get((owner, attr))
        if not keys_b:
            continue
        if key == WILDCARD or WILDCARD in keys_b:
            out.add((owner, attr, WILDCARD))
        elif key in keys_b:
            out.add((owner, attr, key))
    return out


def _cell_text(cell: Cell) -> str:
    owner, attr, key = cell
    if key is None:
        return f"{owner}.{attr}"
    if key == WILDCARD:
        return f"{owner}.{attr}[*]"
    return f"{owner}.{attr}[{_describe_value(key)}]"


def _event_text(event: TieEvent) -> str:
    args = ",".join(_describe_value(a) for a in event.args)
    label = f"{_describe_callback(event.callback)}({args})"
    if event.site is not None:
        label += f" scheduled at {event.site[0]}:{event.site[1]}"
    return label


class InterferenceMonitor:
    """Tie hook + attribute instrumentation producing R003/R004 findings."""

    def __init__(self, declared: list[tuple[type, SharedStateDecl]]):
        self._declared = declared
        self._patched: list[tuple[type, Any, Any]] = []
        self._owner_labels: dict[int, str] = {}
        self._owner_refs: list[Any] = []  # keep ids stable for the run
        self._owner_counts: dict[str, int] = {}
        self._busy = False
        self._armed = False
        self._current: TieEvent | None = None
        self._reads: set[Cell] = set()
        self._writes: set[Cell] = set()
        self._records: list[tuple[TieEvent, frozenset, frozenset]] = []
        self._sim_indices: dict[int, int] = {}
        self._sim_refs: list[Simulator] = []
        self._group_counts: dict[int, int] = {}
        self._current_group: tuple[int, int] | None = None
        self._seen: set[tuple] = set()
        self._allow_cache: dict[str, dict[int, set[str]]] = {}
        self.findings: list[Finding] = []
        self.groups_observed = 0
        self.multi_groups = 0
        #: (sim_index, group_index) of every group with a conflict — the
        #: DPOR-lite permutation targets for schedule exploration.
        self.conflict_groups: set[tuple[int, int]] = set()

    # -- instrumentation ---------------------------------------------------

    def install(self) -> None:
        for cls, decl in self._declared:
            self._patch_class(cls, decl.guarded)

    def uninstall(self) -> None:
        while self._patched:
            cls, orig_get, orig_set = self._patched.pop()
            cls.__getattribute__ = orig_get  # type: ignore[method-assign]
            cls.__setattr__ = orig_set  # type: ignore[method-assign]

    def _patch_class(self, cls: type, tracked: frozenset[str]) -> None:
        orig_get = cls.__getattribute__
        orig_set = cls.__setattr__
        mon = self

        def __getattribute__(obj, name):
            value = orig_get(obj, name)
            if name in tracked and mon._current is not None and not mon._busy:
                return mon._note_read(obj, name, value)
            return value

        def __setattr__(obj, name, value):
            if name in tracked and mon._current is not None and not mon._busy:
                mon._note_write(obj, name, value)
            orig_set(obj, name, value)

        cls.__getattribute__ = __getattribute__  # type: ignore[method-assign]
        cls.__setattr__ = __setattr__  # type: ignore[method-assign]
        self._patched.append((cls, orig_get, orig_set))

    def _owner_label(self, obj: Any) -> str:
        key = id(obj)
        label = self._owner_labels.get(key)
        if label is None:
            cls_name = type(obj).__qualname__
            name = getattr(obj, "name", None)
            if isinstance(name, str):
                label = f"{cls_name}<{name}>"
            else:
                count = self._owner_counts.get(cls_name, 0)
                self._owner_counts[cls_name] = count + 1
                label = f"{cls_name}#{count}"
            self._owner_labels[key] = label
            self._owner_refs.append(obj)
        return label

    def _note_read(self, obj: Any, name: str, value: Any) -> Any:
        self._busy = True
        try:
            if isinstance(value, _TrackedOps):
                return value
            owner = self._owner_label(obj)
            proxy = _TRACKED_TYPES.get(type(value))
            if proxy is not None:
                # lazily swap the container for a key-granular proxy; the
                # mere attribute read is not a footprint — the dict ops are
                tracked = proxy(value, self, owner, name)
                setattr(obj, name, tracked)
                return tracked
            self._reads.add((owner, name, None))
            return value
        finally:
            self._busy = False

    def _note_write(self, obj: Any, name: str, value: Any) -> None:
        self._busy = True
        try:
            owner = self._owner_label(obj)
            if isinstance(value, dict):
                # rebinding the whole table clobbers every key
                self._writes.add((owner, name, WILDCARD))
            else:
                self._writes.add((owner, name, None))
        finally:
            self._busy = False

    def note_cell(self, owner: str, attr: str, key: Any, *, write: bool) -> None:
        """Key-granular footprint entry, called by the tracked containers."""
        if self._current is None or self._busy:
            return
        cell = (owner, attr, key if isinstance(key, (str, int, float, bytes, tuple, frozenset, type(None))) else repr(key))
        (self._writes if write else self._reads).add(cell)

    # -- tie hook ----------------------------------------------------------

    def register(self, sim: Simulator) -> None:
        self._sim_indices[id(sim)] = len(self._sim_refs)
        self._group_counts[id(sim)] = 0
        self._sim_refs.append(sim)

    def on_group(self, sim: Simulator, events: list[TieEvent]):
        sim_index = self._sim_indices.get(id(sim), -1)
        group_index = self._group_counts.get(id(sim), 0)
        self._group_counts[id(sim)] = group_index + 1
        self._current_group = (sim_index, group_index)
        self.groups_observed += 1
        if len(events) > 1:
            self.multi_groups += 1
            self._armed = True
        return None

    def before_event(self, sim: Simulator, event: TieEvent) -> None:
        if not self._armed:
            return
        self._current = event
        self._reads = set()
        self._writes = set()

    def after_event(self, sim: Simulator, event: TieEvent) -> None:
        if self._current is None:
            return
        self._records.append(
            (event, frozenset(self._reads), frozenset(self._writes))
        )
        self._current = None

    def end_group(self, sim: Simulator) -> None:
        records, self._records = self._records, []
        armed, self._armed = self._armed, False
        group, self._current_group = self._current_group, None
        if not armed or len(records) < 2:
            return
        conflict = False
        for i, (event_i, reads_i, writes_i) in enumerate(records):
            for event_j, reads_j, writes_j in records[i + 1 :]:
                ww = _overlap(set(writes_i), set(writes_j))
                if ww:
                    conflict |= self._report("R003", event_i, event_j, ww)
                rw = (
                    _overlap(set(reads_i), set(writes_j))
                    | _overlap(set(writes_i), set(reads_j))
                ) - ww
                if rw:
                    conflict |= self._report("R004", event_i, event_j, rw)
        if conflict and group is not None:
            self.conflict_groups.add(group)

    # -- findings ----------------------------------------------------------

    def _site_allows(self, site: tuple[str, int] | None) -> set[str]:
        """Rule ids an inline ``repro: allow[...]`` marker grants ``site``."""
        if site is None:
            return set()
        allowed = self._allow_cache.get(site[0])
        if allowed is None:
            from ..engine import suppressed_rules

            try:
                with open(site[0], encoding="utf-8", errors="replace") as fh:
                    allowed = suppressed_rules(fh.read())
            except OSError:
                allowed = {}
            self._allow_cache[site[0]] = allowed
        return allowed.get(site[1], set())

    def _report(
        self, rule: str, event_a: TieEvent, event_b: TieEvent, cells: set[Cell]
    ) -> bool:
        """Record a finding; returns whether the conflict is *live*.

        A schedule site carrying an inline allow marker for ``rule``
        documents a serialization contract (e.g. same-node deliveries
        drain one queue in send order): the conflict is neither reported
        nor offered to schedule exploration — its order is defined, not
        an accident of heap insertion.
        """
        self._busy = True
        try:
            site = event_b.site or event_a.site
            if site is not None and rule in self._site_allows(site):
                return False
            label_a = _describe_callback(event_a.callback)
            label_b = _describe_callback(event_b.callback)
            cell_keys = tuple(sorted(f"{c[0]}.{c[1]}" for c in cells))
            dedup = (rule, tuple(sorted((label_a, label_b))), cell_keys)
            if dedup in self._seen:
                return True
            self._seen.add(dedup)
            kind = "write/write" if rule == "R003" else "read/write"
            cell_text = ", ".join(sorted(_cell_text(c) for c in cells))
            self.findings.append(
                Finding(
                    path=site[0] if site else "<runtime>",
                    line=site[1] if site else 0,
                    col=0,
                    rule=rule,
                    message=(
                        f"{kind} conflict at t={event_a.time!r} between "
                        f"{_event_text(event_a)} and {_event_text(event_b)} "
                        f"on {cell_text}"
                    ),
                )
            )
            return True
        finally:
            self._busy = False


@dataclasses.dataclass(slots=True)
class RaceReport:
    """Outcome of a monitored run."""

    findings: list[Finding]
    groups_observed: int
    multi_groups: int
    conflict_groups: set[tuple[int, int]]
    classes_watched: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        head = (
            f"races: {'OK' if self.ok else 'CONFLICTS DETECTED'} — "
            f"{self.groups_observed} tie group(s), {self.multi_groups} with "
            f">1 event, {self.classes_watched} class(es) watched"
        )
        parts = [head]
        parts.extend(f.format_text() for f in self.findings)
        return "\n".join(parts)


def run_monitored(
    experiment: Callable[[], Any],
    *,
    quiet: bool = True,
    declared: list[tuple[type, SharedStateDecl]] | None = None,
) -> RaceReport:
    """Execute ``experiment`` once under the interference monitor.

    ``quiet`` redirects the experiment's stdout so the race verdict is
    the only output (mirrors the determinism sanitizer).  ``declared``
    overrides package discovery — tests monitor toy classes this way.
    """
    import contextlib
    import io

    if declared is None:
        declared = discover_declared_classes()
    monitor = InterferenceMonitor(declared)
    previous = set_tie_hook(monitor)
    monitor.install()
    try:
        if quiet:
            with contextlib.redirect_stdout(io.StringIO()):
                experiment()
        else:
            experiment()
    finally:
        monitor.uninstall()
        set_tie_hook(previous)
    return RaceReport(
        findings=sorted(monitor.findings, key=Finding.sort_key),
        groups_observed=monitor.groups_observed,
        multi_groups=monitor.multi_groups,
        conflict_groups=set(monitor.conflict_groups),
        classes_watched=len(declared),
    )
