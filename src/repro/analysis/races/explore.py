"""Schedule exploration: permute conflicting tie groups, compare traces.

The interference monitor (R003/R004) reports conflicts in *one* executed
order.  Exploration answers the converse question — does any legal
reordering of simultaneous events change the run?  It re-executes a
scenario N times, each time applying a seeded permutation to the tie
groups the base run found conflicts in (a DPOR-lite: independent groups
commute by construction, so permuting them is pure cost), and compares
*canonical* traces across runs.

The canonical trace differs from :class:`repro.netsim.EventTrace` in
exactly one way: within a tie group, event descriptions are sorted and
sequence numbers dropped, so two runs that differ only by a commuting
permutation hash identically.  Any digest mismatch therefore means the
permutation *observably changed the simulation* — the definition of a
simultaneity race — and the report localises it to the first divergent
tie group, reusing the sanitizer's :class:`~repro.analysis.sanitizer.Divergence`.

Only groups with *live* recorded conflicts are permuted — the DPOR
insight, not an economy.  Handlers with disjoint footprints still share
the simulator RNG stream, and the order they draw in is part of program
order: shuffling two independent deliveries swaps their jitter draws and
the traces diverge for stochastic reasons that say nothing about state
interference.  Likewise a group whose only conflicts sit under an inline
``repro: allow[...]`` serialization contract has a *defined* order —
permuting it would test an ordering the model forbids.  When the base
run records no live conflicts (the healthy state once R003/R004 are
clean) there is nothing to permute and the base trace stands.

Entry points: :func:`explore`, or ``python -m repro <cmd> --explore N``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import io
import random  # repro: allow[D002] - permutation rngs are seed-derived
from typing import Any, Callable

from ...netsim.simulator import Simulator, TieEvent, _describe_callback, _describe_value, set_tie_hook
from ..sanitizer import Divergence
from .runtime import InterferenceMonitor, discover_declared_classes


def _event_desc(event: TieEvent) -> str:
    """Order-free event description: everything but the sequence number."""
    args = ",".join(_describe_value(a) for a in event.args)
    return (
        f"t={event.time!r} p={event.priority} "
        f"{_describe_callback(event.callback)}({args})"
    )


class CanonicalRecorder:
    """Tie hook recording a per-group canonical digest per simulator."""

    def __init__(self, *, keep_descriptions: bool = False):
        self.keep_descriptions = keep_descriptions
        self.digests: list[list[bytes]] = []  # per sim, per group
        self.descriptions: list[list[str]] = []
        self.multi_groups: set[tuple[int, int]] = set()
        self._sim_indices: dict[int, int] = {}

    def register(self, sim: Simulator) -> None:
        self._sim_indices[id(sim)] = len(self.digests)
        self.digests.append([])
        self.descriptions.append([])

    def on_group(self, sim: Simulator, events: list[TieEvent]):
        sim_index = self._sim_indices.get(id(sim))
        if sim_index is None:  # pragma: no cover - unregistered sim
            return None
        descs = sorted(_event_desc(e) for e in events)
        joined = "\n".join(descs)
        digest = hashlib.blake2b(
            joined.encode("utf-8", "backslashreplace"), digest_size=8
        ).digest()
        group_index = len(self.digests[sim_index])
        self.digests[sim_index].append(digest)
        if self.keep_descriptions:
            self.descriptions[sim_index].append(joined)
        if len(events) > 1:
            self.multi_groups.add((sim_index, group_index))
        return None

    def before_event(self, sim, event) -> None:
        pass

    def after_event(self, sim, event) -> None:
        pass

    def end_group(self, sim) -> None:
        pass


class _BaseHook(CanonicalRecorder):
    """Base-run hook: canonical recording + the interference monitor."""

    def __init__(self, monitor: InterferenceMonitor):
        super().__init__(keep_descriptions=True)
        self.monitor = monitor

    def register(self, sim: Simulator) -> None:
        super().register(sim)
        self.monitor.register(sim)

    def on_group(self, sim, events):
        super().on_group(sim, events)
        return self.monitor.on_group(sim, events)

    def before_event(self, sim, event) -> None:
        self.monitor.before_event(sim, event)

    def after_event(self, sim, event) -> None:
        self.monitor.after_event(sim, event)

    def end_group(self, sim) -> None:
        self.monitor.end_group(sim)


class _PermuteHook(CanonicalRecorder):
    """Permutation-run hook: shuffle targeted tie groups, seeded per group.

    The rng for group ``(s, g)`` of permutation ``p`` is derived from
    ``(seed, p, s, g)`` alone, so a divergence reproduces exactly from its
    run index.
    """

    def __init__(self, targets: set[tuple[int, int]], seed: int, perm_index: int):
        super().__init__()
        self.targets = targets
        self.seed = seed
        self.perm_index = perm_index
        self.permuted_groups = 0

    def on_group(self, sim, events):
        sim_index = self._sim_indices.get(id(sim))
        group_index = len(self.digests[sim_index]) if sim_index is not None else -1
        super().on_group(sim, events)
        if len(events) < 2 or (sim_index, group_index) not in self.targets:
            return None
        material = f"{self.seed}|{self.perm_index}|{sim_index}|{group_index}"
        derived = hashlib.blake2b(material.encode(), digest_size=8).digest()
        rng = random.Random(int.from_bytes(derived, "big"))
        reordered = list(events)
        rng.shuffle(reordered)
        self.permuted_groups += 1
        return reordered


@dataclasses.dataclass(slots=True)
class ExploreReport:
    """Outcome of a schedule-exploration run."""

    permutations: int
    target_groups: int
    groups_observed: int
    multi_groups: int
    permuted_total: int
    base_digest: str
    divergences: list[tuple[int, Divergence]]  # (permutation index, where)
    monitor_findings: int

    @property
    def invariant(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        if self.invariant:
            if not self.target_groups:
                return (
                    f"explore: INVARIANT — no conflicting tie group(s) to "
                    f"permute ({self.groups_observed} group(s), "
                    f"{self.multi_groups} with >1 event), canonical trace "
                    f"{self.base_digest}"
                )
            return (
                f"explore: INVARIANT — {self.permutations} permutation(s) over "
                f"{self.target_groups} conflicting tie group(s) "
                f"({self.permuted_total} shuffles applied), canonical trace "
                f"{self.base_digest}"
            )
        parts = [
            f"explore: ORDER-DEPENDENT — {len(self.divergences)} of "
            f"{self.permutations} permutation(s) diverged "
            f"(targets: {self.target_groups} conflicting tie group(s))"
        ]
        for perm_index, divergence in self.divergences:
            parts.append(f"permutation #{perm_index}:")
            parts.append(str(divergence))
        return "\n".join(parts)


def _combined_digest(digests: list[list[bytes]]) -> str:
    combined = hashlib.blake2b(digest_size=16)
    for per_sim in digests:
        for digest in per_sim:
            combined.update(digest)
        combined.update(b"\xff")
    return combined.hexdigest()


def _first_divergence(
    base: CanonicalRecorder, run: CanonicalRecorder
) -> Divergence | None:
    """First tie group whose canonical digest differs from the base run."""
    for sim_index in range(min(len(base.digests), len(run.digests))):
        base_groups = base.digests[sim_index]
        run_groups = run.digests[sim_index]
        for group_index in range(min(len(base_groups), len(run_groups))):
            if base_groups[group_index] != run_groups[group_index]:
                base_desc = (
                    base.descriptions[sim_index][group_index]
                    if base.descriptions[sim_index]
                    else None
                )
                return Divergence(
                    sim_index,
                    group_index,
                    f"tie group #{group_index}: {base_desc}" if base_desc else None,
                    f"tie group #{group_index}: canonical digest "
                    f"{run_groups[group_index].hex()}",
                )
        if len(base_groups) != len(run_groups):
            shared = min(len(base_groups), len(run_groups))
            return Divergence(sim_index, shared, None, None)
    if len(base.digests) != len(run.digests):
        return Divergence(min(len(base.digests), len(run.digests)), 0, None, None)
    return None


def _run_once(experiment: Callable[[], Any], hook, *, quiet: bool) -> None:
    previous = set_tie_hook(hook)
    try:
        if quiet:
            with contextlib.redirect_stdout(io.StringIO()):
                experiment()
        else:
            experiment()
    finally:
        set_tie_hook(previous)


def explore(
    experiment: Callable[[], Any],
    *,
    permutations: int = 25,
    seed: int = 0,
    quiet: bool = True,
    declared: list | None = None,
) -> ExploreReport:
    """Base run + N permutation runs; compare canonical traces.

    ``declared`` overrides the package-wide class discovery for the base
    run's interference monitor (tests pass toy declarations).
    """
    monitor = InterferenceMonitor(
        discover_declared_classes() if declared is None else declared
    )
    base = _BaseHook(monitor)
    monitor.install()
    try:
        _run_once(experiment, base, quiet=quiet)
    finally:
        monitor.uninstall()

    targets = set(monitor.conflict_groups)

    divergences: list[tuple[int, Divergence]] = []
    permuted_total = 0
    # No live conflicts means nothing to permute: independent handlers
    # still share the RNG stream, so shuffling them anyway would only
    # measure draw-order noise (see module docstring).
    if targets:
        for perm_index in range(permutations):
            hook = _PermuteHook(targets, seed, perm_index)
            _run_once(experiment, hook, quiet=quiet)
            permuted_total += hook.permuted_groups
            divergence = _first_divergence(base, hook)
            if divergence is not None:
                divergences.append((perm_index, divergence))

    return ExploreReport(
        permutations=permutations,
        target_groups=len(targets),
        groups_observed=sum(len(d) for d in base.digests),
        multi_groups=len(base.multi_groups),
        permuted_total=permuted_total,
        base_digest=_combined_digest(base.digests),
        divergences=divergences,
        monitor_findings=len(monitor.findings),
    )
