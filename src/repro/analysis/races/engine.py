"""Race-rule registry and the static analysis entry point.

:func:`analyze_races` is the simultaneity sibling of
:func:`repro.analysis.flow.engine.analyze_paths`: it loads the modules
once, computes effect sets for every scheduled callback, and reports the
static R-rules (R001/R002), filtered through the same inline-suppression
syntax (``# repro: allow[R001]``) and optionally a
:class:`repro.analysis.engine.SuppressionTracker` for U001.

R003/R004 are *runtime* rules: they are registered here so the SARIF
export, the README rule table, and ``--rules`` selection know them, but
their findings come from the dynamic interference monitor
(:mod:`.runtime`, ``python -m repro <cmd> --races``), not from this
function.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from ..findings import Finding
from ..flow.core import ModuleInfo, NameIndex, load_modules
from .effects import check_declarations, check_write_overlaps, collect_schedule_sites

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import SuppressionTracker


@dataclasses.dataclass(frozen=True, slots=True)
class RaceRule:
    """Registry metadata for one race rule (the checks live elsewhere)."""

    id: str
    summary: str
    rationale: str
    family: str  # "race-static" | "race-runtime"


RACE_RULES: dict[str, RaceRule] = {
    rule.id: rule
    for rule in (
        RaceRule(
            "R001",
            "same-instant handlers have statically overlapping write sets "
            "over declared shared state",
            "two events at equal virtual time run in heap insertion order; "
            "results that depend on that order are scheduling artifacts, "
            "not properties of the modelled system",
            "race-static",
        ),
        RaceRule(
            "R002",
            "scheduler-visible shared state accessed without a "
            "__shared_state__ declaration",
            "the race rules can only watch cells that are declared; an "
            "undeclared table is an unwatched table",
            "race-static",
        ),
        RaceRule(
            "R003",
            "write/write conflict observed inside a tie group at runtime",
            "both orders of the colliding writes were schedulable; the run's "
            "answer picked one silently",
            "race-runtime",
        ),
        RaceRule(
            "R004",
            "read/write conflict observed inside a tie group at runtime",
            "a same-instant reader saw either the pre- or post-write value "
            "depending on insertion order alone",
            "race-runtime",
        ),
    )
}

_STATIC_RULES = frozenset(
    r for r, m in RACE_RULES.items() if m.family == "race-static"
)


def _select(rule_ids: Iterable[str] | None) -> frozenset[str]:
    if rule_ids is None:
        return frozenset(RACE_RULES)
    selected = frozenset(rule_ids)
    unknown = sorted(selected - set(RACE_RULES))
    if unknown:
        raise KeyError(f"unknown race rule ids: {', '.join(unknown)}")
    return selected


def analyze_races(
    paths: Iterable[str | Path],
    *,
    rule_ids: Iterable[str] | None = None,
    tracker: "SuppressionTracker | None" = None,
    modules: list[ModuleInfo] | None = None,
) -> list[Finding]:
    """Run the static race rules over every Python file under ``paths``.

    ``modules`` reuses an already-parsed module set (one parse per file
    across all rule families).
    """
    from ..engine import suppressed_rules

    selected = _select(rule_ids) & _STATIC_RULES
    if modules is None:
        modules = load_modules(paths)
    findings: list[Finding] = []

    if "R001" in selected:
        index = NameIndex(modules)
        sites, commutative = collect_schedule_sites(modules, index)
        findings.extend(check_write_overlaps(sites, commutative))
    if "R002" in selected:
        findings.extend(check_declarations(modules))

    if tracker is not None:
        tracker.note_rules(selected)
        for module in modules:
            tracker.register_source(module.path, module.source)
        kept = [f for f in findings if not tracker.is_suppressed(f)]
    else:
        allowed_by_path = {
            module.path: suppressed_rules(module.source) for module in modules
        }
        kept = [
            f
            for f in findings
            if f.rule not in allowed_by_path.get(f.path, {}).get(f.line, ())
        ]
    return sorted(kept, key=Finding.sort_key)


def race_rule_table() -> str:
    """Plain-text rule table matching the lint CLI's ``--list-rules`` style."""
    lines = ["rule   summary", "-----  -------"]
    for rule_id in sorted(RACE_RULES):
        rule = RACE_RULES[rule_id]
        lines.append(f"{rule_id:<6} {rule.summary}")
        lines.append(f"       why: {rule.rationale}")
    return "\n".join(lines)
