"""Shared loader for the module-level self-describing declarations.

Four analysis families read literal declarations off the module AST —
``__trust_boundary__`` (flow), ``__shared_state__`` (races),
``__state_bounds__`` (memory) and ``__layer__`` (layers).  All of them
share the same contract, implemented once here:

* the declaration is a **module-level literal assignment** (plain or
  annotated) to the well-known name;
* it is read **statically** with ``ast.literal_eval`` — the module is
  never imported, so declarations in broken or platform-bound modules
  still analyse;
* a non-literal or wrongly-typed value reads as *absent*: the parser
  never guesses, and each family's own rules are what report missing or
  malformed declarations with their uniform message from
  :func:`invalid_declaration_message`.
"""

from __future__ import annotations

import ast
import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class ModuleLiteral:
    """One module-level literal declaration, with its source line."""

    name: str
    value: object
    lineno: int


def find_module_literal(tree: ast.AST, name: str) -> ModuleLiteral | None:
    """The first module-level ``name = <literal>`` assignment, or None.

    Non-literal right-hand sides (anything ``ast.literal_eval`` rejects)
    read as absent: declarations must be data, never computed.
    """
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return None
                return ModuleLiteral(name, value, getattr(node, "lineno", 1))
    return None


def find_declaration_dict(tree: ast.AST, name: str) -> tuple[dict, int] | None:
    """``(dict value, line)`` of a dict-valued declaration, or None.

    The common case for ``__trust_boundary__`` / ``__shared_state__`` /
    ``__state_bounds__``: a present-but-non-dict value reads as absent.
    """
    found = find_module_literal(tree, name)
    if found is None or not isinstance(found.value, dict):
        return None
    return found.value, found.lineno


def invalid_declaration_message(name: str, detail: str) -> str:
    """The uniform malformed-declaration message every family shares."""
    return (
        f"{name} declaration is invalid: {detail} — declarations are "
        "module-level literals read statically; fix the literal so the "
        "analysis can trust it"
    )
