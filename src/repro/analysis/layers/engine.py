"""Layer-rule registry and the transport-purity analysis entry point.

:func:`analyze_layers` is the layering sibling of the other engines: it
loads the modules once (or reuses a shared parse from the CLI), resolves
each module's layer from the import-layering manifest, runs the static
L-rules, and filters through the same inline-suppression syntax
(``# repro: allow[L001]``) and optional
:class:`~repro.analysis.engine.SuppressionTracker` the other engines
use.  The dynamic witness — L006, importing the declared pure core with
the platform layers blocked — lives in :mod:`.runtime` and is wired in
by the CLI's ``--layers``.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from ..findings import Finding
from ..flow.core import ModuleInfo, load_modules
from .manifest import DEFAULT_MANIFEST
from .rules import (
    check_l001,
    check_l002,
    check_l003,
    check_l004,
    check_l005,
    classify_modules,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import SuppressionTracker


@dataclasses.dataclass(frozen=True, slots=True)
class LayerRule:
    """Registry metadata for one layering rule (checks live in .rules)."""

    id: str
    summary: str
    rationale: str
    family: str  # "layering" (static) or "layering-runtime"
    severity: str = "error"


LAYER_RULES: dict[str, LayerRule] = {
    rule.id: rule
    for rule in (
        LayerRule(
            "L001",
            "pure-core module imports a forbidden layer (simulator, "
            "observability, asyncio, sockets, clocks, OS entropy)",
            "the paper's guard is a separable module; one upward import "
            "couples every decision to the simulator and kills the "
            "real-socket port (ROADMAP item 4) — inject capabilities "
            "through repro.guard.core.ports instead",
            "layering",
        ),
        LayerRule(
            "L002",
            "pure-core function reaches a transport/scheduling API "
            "through the call graph",
            "even without an import, calling schedule()/send()/submit() "
            "on a duck-typed argument makes the decision logic drive the "
            "transport; pure functions return decisions and let the "
            "adapter act on them",
            "layering",
        ),
        LayerRule(
            "L003",
            "purity escape in the core: wall clock, OS entropy, blocking "
            "I/O or global mutable module state",
            "hidden inputs make replay and the sanitizer's bit-identical "
            "traces impossible; time and randomness arrive through the "
            "injected Clock/Rng seams, state lives in instances the "
            "adapter owns",
            "layering",
        ),
        LayerRule(
            "L004",
            "admission/verification decision logic living in an adapter "
            "instead of behind the core seam",
            "an adapter computing hash digests is re-growing decision "
            "logic outside the audited core — the exact drift the "
            "guard-core extraction removed; add the decision to "
            "repro.guard.core and call through the seam",
            "layering",
        ),
        LayerRule(
            "L005",
            "layer-manifest drift: undeclared module or stale "
            "declaration",
            "the manifest and the per-package __layer__ declarations are "
            "two views of one architecture; when they disagree the "
            "layering analysis is checking a world that no longer "
            "exists",
            "layering",
        ),
        LayerRule(
            "L006",
            "pure core fails to import with the platform layers blocked "
            "(runtime import-isolation witness)",
            "the dynamic proof of L001's static claim: a fresh "
            "interpreter imports the declared pure core with "
            "netsim/obs/asyncio/sockets blocked by a meta-path finder, "
            "so no transitive platform dependency can hide behind a "
            "re-export or a lazy import",
            "layering-runtime",
        ),
    )
}


def _select(rule_ids: Iterable[str] | None) -> frozenset[str]:
    if rule_ids is None:
        return frozenset(LAYER_RULES)
    selected = frozenset(rule_ids)
    unknown = sorted(selected - set(LAYER_RULES))
    if unknown:
        raise KeyError(f"unknown layer rule ids: {', '.join(unknown)}")
    return selected


def analyze_layers(
    paths: Iterable[str | Path],
    *,
    rule_ids: Iterable[str] | None = None,
    tracker: "SuppressionTracker | None" = None,
    modules: list[ModuleInfo] | None = None,
    manifest: dict[str, str] | None = None,
    runtime: bool = False,
) -> list[Finding]:
    """Run the selected layering rules over every file under ``paths``.

    ``modules`` reuses an already-parsed module set (the CLI parses each
    file exactly once across all families); ``manifest`` substitutes a
    toy prefix map for tests.  ``runtime=False`` (the default) keeps the
    engine static: L006's import-isolation witness only runs when the
    caller opts in, because it imports the *installed* ``repro`` pure
    core — meaningless when analysing a toy fixture tree.
    """
    from ..engine import suppressed_rules

    selected = _select(rule_ids)
    layer_manifest = DEFAULT_MANIFEST if manifest is None else manifest
    if modules is None:
        modules = load_modules(paths)
    layered = classify_modules(modules, layer_manifest)

    findings: list[Finding] = []
    if "L001" in selected:
        findings.extend(check_l001(layered, layer_manifest))
    if "L002" in selected:
        findings.extend(check_l002(layered))
    if "L003" in selected:
        findings.extend(check_l003(layered))
    if "L004" in selected:
        findings.extend(check_l004(layered))
    if "L005" in selected:
        findings.extend(check_l005(layered, layer_manifest))
    if runtime and "L006" in selected:
        from .runtime import verify_import_isolation

        findings.extend(verify_import_isolation(manifest=layer_manifest).findings)

    if tracker is not None:
        tracker.note_rules(selected)
        for module in modules:
            tracker.register_source(module.path, module.source)
        kept = [f for f in findings if not tracker.is_suppressed(f)]
    else:
        allowed_by_path = {
            module.path: suppressed_rules(module.source) for module in modules
        }
        kept = [
            f
            for f in findings
            if f.rule not in allowed_by_path.get(f.path, {}).get(f.line, ())
        ]
    return sorted(kept, key=Finding.sort_key)


def layer_rule_table() -> str:
    """Plain-text rule table matching the lint CLI's ``--list-rules`` style."""
    lines = ["rule   summary", "-----  -------"]
    for rule_id in sorted(LAYER_RULES):
        rule = LAYER_RULES[rule_id]
        lines.append(f"{rule_id:<6} {rule.summary}")
        lines.append(f"       why: {rule.rationale}")
    return "\n".join(lines)
