"""The static L-rule checks (L001–L005).

All five work from the parsed module set plus the layer manifest; no
module is ever imported.  The dynamic sibling — L006, re-importing the
declared pure core with the platform layers blocked — lives in
:mod:`.runtime`.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator

from ..findings import Finding
from ..flow.core import ModuleInfo
from ..perf.hotpath import module_dotted
from .manifest import (
    DECL_NAME,
    FORBIDDEN_STDLIB,
    LAYERS,
    declared_layer,
    layer_of,
)

#: Method/attribute names whose *call* means transport or scheduling —
#: the simulator seam a pure-core function must never reach, even
#: duck-typed through an argument (which L001's import check cannot
#: see).
TRANSPORT_APIS: frozenset[str] = frozenset(
    {
        "schedule",
        "schedule_at",
        "submit",
        "send",
        "sendto",
        "send_udp",
        "recv",
        "connect",
        "deliver",
        "enqueue_packet",
    }
)

#: Dotted call roots that read the wall clock or OS entropy — the
#: purity escapes the injected Clock/Rng seams exist to replace.
_IMPURE_ROOTS: frozenset[str] = frozenset(
    {"time", "datetime", "random", "secrets", "os"}
)

#: Builtins that block on the outside world.
_IO_BUILTINS: frozenset[str] = frozenset({"open", "input", "print"})

#: Verification primitives that belong behind the core seam: an adapter
#: computing hashes is making an admission/verification decision the
#: core should own (L004).
_DECISION_PRIMITIVES: frozenset[str] = frozenset({"hashlib", "hmac"})


@dataclasses.dataclass(slots=True)
class LayeredModule:
    """One module with its resolved and declared layers."""

    info: ModuleInfo
    name: str  # dotted module name
    package: str  # dotted package relative imports resolve against
    layer: str | None  # manifest layer (longest prefix), None = unlayered
    declared: tuple[object, int] | None  # (__layer__ value, lineno)


def classify_modules(
    modules: list[ModuleInfo], manifest: dict[str, str]
) -> list[LayeredModule]:
    out: list[LayeredModule] = []
    for info in modules:
        name = module_dotted(info.path)
        if info.path.endswith("__init__.py"):
            package = name
        else:
            package = name.rpartition(".")[0]
        out.append(
            LayeredModule(
                info=info,
                name=name,
                package=package,
                layer=layer_of(name, manifest),
                declared=declared_layer(info.tree),
            )
        )
    return out


def _type_checking_lines(tree: ast.Module) -> set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` blocks (typing-only
    imports never execute, so they cannot violate the layering)."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = None
        if isinstance(test, ast.Name):
            name = test.id
        elif isinstance(test, ast.Attribute):
            name = test.attr
        if name == "TYPE_CHECKING":
            for stmt in node.body:
                lines.update(range(stmt.lineno, (stmt.end_lineno or stmt.lineno) + 1))
    return lines


def _resolve_from(module: LayeredModule, node: ast.ImportFrom) -> str | None:
    """Absolute dotted target of a ``from ... import`` statement."""
    if node.level == 0:
        return node.module
    parts = module.package.split(".") if module.package else []
    climb = node.level - 1
    if climb > len(parts):
        return None
    base = parts[: len(parts) - climb] if climb else parts
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _imported_names(
    module: LayeredModule, skip_lines: set[int]
) -> Iterator[tuple[str, int]]:
    """Every absolute module name this module imports, with its line.

    For ``from pkg import sub`` both ``pkg`` and ``pkg.sub`` are
    yielded: the bound name may be a submodule, and flagging the worst
    resolution is the conservative reading.
    """
    for node in ast.walk(module.info.tree):
        if isinstance(node, ast.Import):
            if node.lineno in skip_lines:
                continue
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.lineno in skip_lines:
                continue
            base = _resolve_from(module, node)
            if base is None:
                continue
            yield base, node.lineno
            for alias in node.names:
                if alias.name != "*":
                    yield f"{base}.{alias.name}", node.lineno


def check_l001(
    modules: list[LayeredModule], manifest: dict[str, str]
) -> list[Finding]:
    """L001: a pure-core module imports a forbidden layer."""
    findings: list[Finding] = []
    internal_roots = {prefix.split(".")[0] for prefix in manifest}
    for module in modules:
        if module.layer != "pure-core":
            continue
        skip = _type_checking_lines(module.info.tree)
        seen: set[tuple[str, int]] = set()
        for target, lineno in _imported_names(module, skip):
            target_layer = layer_of(target, manifest)
            root = target.split(".")[0]
            if target_layer == "pure-core":
                continue
            if target_layer in ("adapter", "platform"):
                reason = f"the {target_layer} layer"
            elif root in FORBIDDEN_STDLIB:
                reason = "platform stdlib"
            elif root in internal_roots:
                # an internal module no manifest prefix covers: its
                # purity is unproven, which is as bad as impure
                reason = "an unlayered internal module"
            else:
                continue
            key = (target, lineno)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                Finding(
                    path=module.info.path,
                    line=lineno,
                    col=0,
                    rule="L001",
                    message=(
                        f"pure-core module {module.name} imports {target} "
                        f"({reason}) — the core may only import down; "
                        "inject the capability through repro.guard.core.ports"
                    ),
                )
            )
    return findings


def _call_root(node: ast.Call) -> str | None:
    """The leftmost dotted name of a call target, or None."""
    func = node.func
    while isinstance(func, ast.Attribute):
        func = func.value
    if isinstance(func, ast.Name):
        return func.id
    return None


def _transport_touches(fn: ast.AST) -> list[tuple[str, int]]:
    """Direct transport/scheduling API calls inside one function body."""
    touches: list[tuple[str, int]] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and node.func.attr in TRANSPORT_APIS:
            touches.append((node.func.attr, node.lineno))
        elif isinstance(node.func, ast.Name) and node.func.id in TRANSPORT_APIS:
            touches.append((node.func.id, node.lineno))
    return touches


def _callees(fn: ast.AST) -> set[str]:
    """Bare and ``self.``-qualified callee names inside one function."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            names.add(func.id)
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            names.add(func.attr)
    return names


#: Transport-reach propagation passes (call chains are shallow).
_REACH_PASSES = 3


def check_l002(modules: list[LayeredModule]) -> list[Finding]:
    """L002: a pure-core function reaches a transport/scheduling API
    through the (intra-module) call graph."""
    findings: list[Finding] = []
    for module in modules:
        if module.layer != "pure-core":
            continue
        info = module.info
        direct: dict[str, list[tuple[str, int]]] = {}
        for qualname, decl in info.functions.items():
            touches = _transport_touches(decl.node)
            if touches:
                direct[qualname] = touches
        # propagate: a function calling a toucher is itself a toucher
        reach: dict[str, tuple[str, str, int]] = {
            q: (q, api, line) for q, ts in direct.items() for api, line in ts[:1]
        }
        for _ in range(_REACH_PASSES):
            changed = False
            for qualname, decl in info.functions.items():
                if qualname in reach:
                    continue
                for callee in _callees(decl.node):
                    target = info.function_named(callee)
                    if target is not None and target.qualname in reach:
                        via, api, _line = reach[target.qualname]
                        reach[qualname] = (via, api, decl.node.lineno)
                        changed = True
                        break
            if not changed:
                break
        for qualname, (via, api, line) in sorted(reach.items()):
            through = "" if via == qualname else f" through {via}"
            findings.append(
                Finding(
                    path=info.path,
                    line=line,
                    col=0,
                    rule="L002",
                    message=(
                        f"pure-core function {qualname} reaches "
                        f"transport/scheduling API {api}(){through} — "
                        "decisions return values; the adapter moves packets"
                    ),
                )
            )
    return findings


def check_l003(modules: list[LayeredModule]) -> list[Finding]:
    """L003: purity escapes — wall clock, OS entropy, blocking I/O or
    global mutable module state outside the injected seams."""
    findings: list[Finding] = []
    for module in modules:
        if module.layer != "pure-core":
            continue
        tree = module.info.tree
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                root = _call_root(node)
                if root in _IMPURE_ROOTS and isinstance(node.func, ast.Attribute):
                    findings.append(
                        Finding(
                            path=module.info.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule="L003",
                            message=(
                                f"pure-core call {root}.{node.func.attr}() "
                                "is a purity escape — take the value "
                                "through the Clock/Rng ports instead"
                            ),
                        )
                    )
                elif isinstance(node.func, ast.Name) and node.func.id in _IO_BUILTINS:
                    findings.append(
                        Finding(
                            path=module.info.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule="L003",
                            message=(
                                f"pure-core call {node.func.id}() performs "
                                "blocking I/O — emit through the Emit port "
                                "and let the adapter do I/O"
                            ),
                        )
                    )
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_literal(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and not (
                    target.id.startswith("__") and target.id.endswith("__")
                ):
                    findings.append(
                        Finding(
                            path=module.info.path,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            rule="L003",
                            message=(
                                f"pure-core module-level {target.id} is "
                                "global mutable state — pure decisions hold "
                                "their state in instances the adapter owns"
                            ),
                        )
                    )
    return findings


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"dict", "list", "set", "defaultdict", "deque", "OrderedDict"}
    return False


def check_l004(modules: list[LayeredModule]) -> list[Finding]:
    """L004: admission/verification decision logic in an adapter —
    statically proxied by hash-primitive use outside the core seam."""
    findings: list[Finding] = []
    for module in modules:
        if module.layer != "adapter":
            continue
        skip = _type_checking_lines(module.info.tree)
        for target, lineno in _imported_names(module, skip):
            if target.split(".")[0] in _DECISION_PRIMITIVES:
                findings.append(
                    Finding(
                        path=module.info.path,
                        line=lineno,
                        col=0,
                        rule="L004",
                        message=(
                            f"adapter module {module.name} imports {target} "
                            "— cookie/verification computations belong in "
                            "repro.guard.core behind the seam, not in the "
                            "simulator adapter"
                        ),
                    )
                )
        for node in ast.walk(module.info.tree):
            if isinstance(node, ast.Call):
                root = _call_root(node)
                if root in _DECISION_PRIMITIVES:
                    findings.append(
                        Finding(
                            path=module.info.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule="L004",
                            message=(
                                f"adapter module {module.name} computes "
                                f"{root} digests inline — move the "
                                "decision into repro.guard.core and call "
                                "through the seam"
                            ),
                        )
                    )
    return findings


def check_l005(
    modules: list[LayeredModule], manifest: dict[str, str]
) -> list[Finding]:
    """L005: layer-manifest drift — undeclared module or stale
    declaration."""
    findings: list[Finding] = []
    for module in modules:
        decl = module.declared
        if decl is not None:
            value, lineno = decl
            if not isinstance(value, str) or value not in LAYERS:
                findings.append(
                    Finding(
                        path=module.info.path,
                        line=lineno,
                        col=0,
                        rule="L005",
                        message=(
                            f"{DECL_NAME} declaration {value!r} is not one "
                            f"of {', '.join(LAYERS)}"
                        ),
                    )
                )
                continue
            if module.layer is None:
                findings.append(
                    Finding(
                        path=module.info.path,
                        line=lineno,
                        col=0,
                        rule="L005",
                        message=(
                            f"module {module.name} declares {DECL_NAME} = "
                            f"{value!r} but no manifest prefix covers it — "
                            "add the package to the layer manifest"
                        ),
                    )
                )
            elif value != module.layer:
                findings.append(
                    Finding(
                        path=module.info.path,
                        line=lineno,
                        col=0,
                        rule="L005",
                        message=(
                            f"stale declaration: module {module.name} "
                            f"declares {value!r} but the manifest places it "
                            f"in {module.layer!r}"
                        ),
                    )
                )
        elif module.name in manifest and module.info.path.endswith("__init__.py"):
            findings.append(
                Finding(
                    path=module.info.path,
                    line=1,
                    col=0,
                    rule="L005",
                    message=(
                        f"package {module.name} is a manifest root but its "
                        f"__init__ carries no {DECL_NAME} declaration — "
                        "packages self-describe so readers see the layer "
                        "where the code lives"
                    ),
                )
            )
    return findings
