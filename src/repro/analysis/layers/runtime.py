"""L006: the runtime import-isolation witness for the pure core.

The static L-rules prove no pure-core *source file* names a platform
module.  This monitor proves the stronger dynamic claim: a fresh
interpreter can import the declared pure-core packages while a
meta-path finder refuses every platform import — the simulator, the
observability stack, asyncio, sockets, threads, clocks and OS entropy.
A transitive dependency hiding behind a re-export, a lazy import inside
a function that runs at import time, or a parent package's ``__init__``
would all surface here as an ``ImportError``.

Mechanics (all inside a subprocess so the analysis process's own
modules are irrelevant):

1. the allowed stdlib is imported *first*, so its transitive
   dependencies are cached and the blocker cannot break the
   interpreter itself;
2. every blocked module already in ``sys.modules`` (``time`` and
   friends are preloaded) is evicted, so the cache cannot satisfy a
   blocked import;
3. a :class:`~importlib.abc.MetaPathFinder` raising ``ImportError`` on
   any blocked prefix is installed at the front of ``sys.meta_path``;
4. for each pure package, stub parent packages (plain ``ModuleType``
   with a real ``__path__``) are registered so ``repro/__init__``  —
   which imports the whole simulator — never executes;
5. ``importlib.import_module`` must then succeed for every pure-core
   manifest prefix.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

from ..findings import Finding
from .manifest import DEFAULT_MANIFEST, pure_prefixes

#: Import prefixes the verifier refuses.  ``os`` is absent because the
#: interpreter's own machinery needs it; the static L001/L003 cover it.
BLOCKED_PREFIXES: tuple[str, ...] = (
    "repro.netsim",
    "repro.obs",
    "asyncio",
    "socket",
    "socketserver",
    "selectors",
    "ssl",
    "threading",
    "multiprocessing",
    "subprocess",
    "concurrent",
    "signal",
    "time",
    "random",
    "secrets",
)

#: Stdlib a pure module may use, pre-imported before the blocker goes up.
_ALLOWED_PRELOAD: tuple[str, ...] = (
    "dataclasses",
    "struct",
    "hashlib",
    "ipaddress",
    "enum",
    "typing",
    "collections",
    "copy",
    "json",
)

_VERIFIER_SCRIPT = r"""
import importlib, json, sys
from pathlib import Path
from types import ModuleType

config = json.loads(sys.argv[1])
src_root = Path(config["src_root"])
blocked = tuple(config["blocked"])
targets = config["targets"]

for name in config["preload"]:
    importlib.import_module(name)


def is_blocked(name):
    return any(name == b or name.startswith(b + ".") for b in blocked)


for name in list(sys.modules):
    if is_blocked(name):
        del sys.modules[name]


class _Blocker:
    def find_spec(self, fullname, path=None, target=None):
        if is_blocked(fullname):
            raise ImportError(
                f"import of {fullname} blocked by the layering verifier "
                "(L006): the pure core must not depend on the platform"
            )
        return None


sys.meta_path.insert(0, _Blocker())
sys.path.insert(0, str(src_root))

result = {"ok": True, "imported": [], "failures": []}
for dotted in targets:
    parts = dotted.split(".")
    for depth in range(1, len(parts)):
        parent = ".".join(parts[:depth])
        if parent in sys.modules:
            continue
        stub = ModuleType(parent)
        stub.__path__ = [str(src_root.joinpath(*parts[:depth]))]
        sys.modules[parent] = stub
    try:
        importlib.import_module(dotted)
    except BaseException as exc:  # report, never crash the verdict
        result["ok"] = False
        result["failures"].append({"target": dotted, "error": f"{type(exc).__name__}: {exc}"})
    else:
        result["imported"].append(dotted)
print(json.dumps(result))
"""


@dataclasses.dataclass(slots=True)
class LayerReport:
    """Outcome of one import-isolation run."""

    ok: bool
    summary: str
    findings: list[Finding]


def verify_import_isolation(
    *,
    manifest: dict[str, str] | None = None,
    targets: list[str] | None = None,
    blocked: tuple[str, ...] = BLOCKED_PREFIXES,
    python: str = sys.executable,
) -> LayerReport:
    """Import every pure-core package in a blocked subprocess.

    ``targets`` overrides the manifest's pure prefixes (tests use an
    adapter module here to prove the blocker actually refuses);
    ``blocked`` substitutes the refused prefix list.
    """
    layer_manifest = DEFAULT_MANIFEST if manifest is None else manifest
    if targets is None:
        targets = pure_prefixes(layer_manifest)
    if not targets:
        return LayerReport(True, "no pure-core packages declared", [])
    import repro

    src_root = Path(repro.__file__).resolve().parent.parent
    config = json.dumps(
        {
            "src_root": str(src_root),
            "blocked": list(blocked),
            "targets": targets,
            "preload": list(_ALLOWED_PRELOAD),
        }
    )
    proc = subprocess.run(
        [python, "-c", _VERIFIER_SCRIPT, config],
        capture_output=True,
        text=True,
        timeout=60,
    )
    findings: list[Finding] = []
    try:
        result = json.loads(proc.stdout.strip().splitlines()[-1])
    except (IndexError, json.JSONDecodeError):
        message = (
            "import-isolation verifier crashed: "
            f"{proc.stderr.strip() or proc.stdout.strip() or 'no output'}"
        )
        findings.append(Finding(path="<verifier>", line=1, col=0, rule="L006", message=message))
        return LayerReport(False, message, findings)
    for failure in result["failures"]:
        dotted = failure["target"]
        rel = Path(*dotted.split("."), "__init__.py")
        findings.append(
            Finding(
                path=str(Path("src") / rel),
                line=1,
                col=0,
                rule="L006",
                message=(
                    f"pure-core package {dotted} failed to import with the "
                    f"platform layers blocked: {failure['error']}"
                ),
            )
        )
    if result["ok"]:
        summary = (
            "import isolation OK: "
            + ", ".join(result["imported"])
            + f" imported with {len(blocked)} platform prefixes blocked"
        )
    else:
        summary = f"{len(result['failures'])} pure-core package(s) leaked a platform dependency"
    return LayerReport(result["ok"], summary, findings)
