"""The import-layering manifest: which package lives in which layer.

The paper's guard is a separable bump-in-the-wire module (§III): its
decision logic does not depend on the transport it fronts.  The repo
makes that structural with three layers,

* **pure-core** — decision state machines that are functions of their
  arguments plus the injected :mod:`repro.guard.core.ports` seams
  (Clock/Rng/Emit).  No simulator, no sockets, no wall clock, no OS
  entropy.
* **adapter** — the simulator-facing shims: they move packets, charge
  CPU costs and schedule callbacks, delegating every decision down into
  the core.
* **platform** — the event-driven packet simulator itself
  (``repro.netsim``) and the observability stack (``repro.obs``).

Imports may only point *down* this list.  The manifest below assigns a
layer to each package prefix (longest prefix wins); each package root
self-describes with a module-level ``__layer__`` literal, and L005
reports drift between the two.  The manifest is a plain dict so toy
fixtures in tests can substitute their own.
"""

from __future__ import annotations

import ast

from ..declarations import find_module_literal

#: The declaration name modules carry (a module-level string literal).
DECL_NAME = "__layer__"

#: The three recognised layers, most- to least-restricted.
LAYERS: tuple[str, ...] = ("pure-core", "adapter", "platform")

#: Package prefix -> layer for the repo.  Longest prefix wins, so
#: ``repro.guard.core`` is pure even though ``repro.guard`` is an
#: adapter package.  Packages not listed are outside the layering
#: (analysis tooling, experiment drivers, attack generators).
DEFAULT_MANIFEST: dict[str, str] = {
    "repro.guard.core": "pure-core",
    "repro.dnswire": "pure-core",
    "repro.guard": "adapter",
    "repro.control": "adapter",
    "repro.netsim": "platform",
    "repro.obs": "platform",
}

#: Stdlib roots a pure-core module must not import: event loops,
#: sockets, threads/processes, clocks and OS entropy.  Everything the
#: core needs from this list arrives through the injected ports.
FORBIDDEN_STDLIB: frozenset[str] = frozenset(
    {
        "asyncio",
        "concurrent",
        "multiprocessing",
        "os",
        "random",
        "secrets",
        "select",
        "selectors",
        "signal",
        "socket",
        "socketserver",
        "ssl",
        "subprocess",
        "threading",
        "time",
    }
)


def layer_of(module_name: str, manifest: dict[str, str]) -> str | None:
    """The manifest layer for a dotted module name (longest prefix wins),
    or ``None`` when no prefix covers it."""
    best: str | None = None
    best_len = -1
    for prefix, layer in manifest.items():
        if module_name == prefix or module_name.startswith(prefix + "."):
            if len(prefix) > best_len:
                best = layer
                best_len = len(prefix)
    return best


def declared_layer(tree: ast.Module) -> tuple[str, int] | None:
    """The module's ``__layer__`` declaration ``(value, lineno)``, or
    ``None``.  Non-string values are returned as-is for L005 to reject
    (the declaration exists but is invalid)."""
    literal = find_module_literal(tree, DECL_NAME)
    if literal is None:
        return None
    return literal.value, literal.lineno  # type: ignore[return-value]


def pure_prefixes(manifest: dict[str, str]) -> list[str]:
    """The manifest's pure-core package prefixes, sorted."""
    return sorted(p for p, layer in manifest.items() if layer == "pure-core")
