"""Transport-purity layering analysis (the L-rules).

The layering layer proves the guard's decision logic is a separable
module, the way the paper deploys it (§III: a bump-in-the-wire box in
front of the ANS).  Each package self-describes with a module-level
``__layer__`` literal (pure-core / adapter / platform) matched against
the import-layering manifest; a static pass keeps platform imports
(L001), transport reach (L002) and purity escapes (L003) out of the
core, keeps decision logic from drifting back into the adapters (L004)
and keeps the manifest honest (L005); and a runtime witness (L006)
re-imports the declared pure core in a subprocess with the platform
layers blocked by a meta-path finder, proving there is no transitive
dependency either.

See DESIGN.md ("Layering model") for the mapping to the paper's
firewall-module architecture.
"""

from .engine import LAYER_RULES, LayerRule, analyze_layers, layer_rule_table
from .manifest import (
    DECL_NAME,
    DEFAULT_MANIFEST,
    FORBIDDEN_STDLIB,
    LAYERS,
    declared_layer,
    layer_of,
    pure_prefixes,
)
from .runtime import BLOCKED_PREFIXES, LayerReport, verify_import_isolation

__all__ = [
    "BLOCKED_PREFIXES",
    "DECL_NAME",
    "DEFAULT_MANIFEST",
    "FORBIDDEN_STDLIB",
    "LAYERS",
    "LAYER_RULES",
    "LayerReport",
    "LayerRule",
    "analyze_layers",
    "declared_layer",
    "layer_of",
    "layer_rule_table",
    "pure_prefixes",
    "verify_import_isolation",
]
