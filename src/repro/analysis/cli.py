"""``python -m repro.analysis [--format=text|json] [paths...]``.

Runs the determinism lint over the given paths (default: ``src``) and
exits nonzero on findings, so it slots directly into CI and pre-commit.
"""

from __future__ import annotations

import argparse
import json
import sys

from .engine import lint_paths
from .rules import RULES


def _rule_table() -> str:
    lines = ["rule   summary", "-----  -------"]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule_id:<6} {rule.summary}")
        lines.append(f"       why: {rule.rationale}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism lint for the simulation core: flags wall-clock "
            "reads, global randomness, unordered scheduling, and other "
            "reproducibility hazards."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_rule_table())
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    try:
        findings = lint_paths(args.paths, rule_ids=rule_ids)
    except (FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.format == "json":
            print(
                json.dumps(
                    {
                        "findings": [finding.to_dict() for finding in findings],
                        "count": len(findings),
                    },
                    indent=2,
                )
            )
        else:
            for finding in findings:
                print(finding.format_text())
            noun = "finding" if len(findings) == 1 else "findings"
            print(f"{len(findings)} {noun}")
    except BrokenPipeError:
        # reader (e.g. `| head`) closed the pipe — the verdict still stands
        sys.stderr.close()
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
