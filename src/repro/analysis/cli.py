"""``python -m repro.analysis [--flow] [--races] [--perf] [--memory] [paths...]``.

Runs the determinism lint (and, with ``--flow``, the taint-dataflow and
FSM-conformance analyses plus suppression hygiene; with ``--races``, the
static simultaneity rules R001/R002; with ``--perf``, the profile-guided
hot-path cost rules P001–P006 weighted by ``--perf-profile``, default
``scripts/BENCH_profile.json``; with ``--memory``, the state-exhaustion
rules M001–M005 over ``__state_bounds__`` declarations; with
``--layers``, the transport-purity layering rules L001–L006 over
``__layer__`` declarations and the import-layering manifest, including
the L006 import-isolation witness) over the given paths (default:
``src``).  Each file is parsed exactly once: the CLI loads a shared
module set and every rule family analyses the same ASTs; ``--bench``
appends the analyzer wall-clock to a dated trajectory file.  The exit code follows the ``--fail-on``
severity contract — by default any finding exits nonzero — so it slots
directly into CI and pre-commit.
``--baseline`` (repeatable) accepts known-findings files; ``--sarif``
additionally writes the findings as a SARIF 2.1.0 document for
code-scanning upload; ``--rules-md`` / ``--rules-md-check`` generate and
drift-check the README rule table.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .engine import SYNTAX_ERROR_RULE, SuppressionTracker, lint_paths
from .findings import Finding
from .rules import RULES

#: Markers delimiting the generated rule table in README.md.
RULES_MD_BEGIN = "<!-- rules:begin (generated: python -m repro.analysis --rules-md) -->"
RULES_MD_END = "<!-- rules:end -->"


def _rule_table() -> str:
    from .flow.engine import flow_rule_table
    from .layers.engine import layer_rule_table
    from .memory.engine import memory_rule_table
    from .perf.engine import perf_rule_table
    from .races.engine import race_rule_table

    lines = ["rule   summary", "-----  -------"]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule_id:<6} {rule.summary}")
        lines.append(f"       why: {rule.rationale}")
    return (
        "\n".join(lines)
        + "\n\n"
        + flow_rule_table()
        + "\n\n"
        + race_rule_table()
        + "\n\n"
        + perf_rule_table()
        + "\n\n"
        + memory_rule_table()
        + "\n\n"
        + layer_rule_table()
    )


def _rule_rows() -> list[tuple[str, str, str, str]]:
    """(id, family, summary, rationale) for every registered rule."""
    from .flow.engine import FLOW_RULES
    from .layers.engine import LAYER_RULES
    from .memory.engine import MEMORY_RULES
    from .perf.engine import PERF_RULES
    from .races.engine import RACE_RULES

    rows: list[tuple[str, str, str, str]] = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        family = "hygiene" if rule_id == "U001" else "lint"
        rows.append((rule_id, family, rule.summary, rule.rationale))
    rows.append(
        (
            SYNTAX_ERROR_RULE,
            "parse",
            "file fails to parse",
            "nothing can be checked in unparsable code",
        )
    )
    for registry in (FLOW_RULES, RACE_RULES, PERF_RULES, MEMORY_RULES, LAYER_RULES):
        for rule_id in sorted(registry):
            rule = registry[rule_id]
            rows.append((rule_id, rule.family, rule.summary, rule.rationale))
    rows.sort(key=lambda row: row[0])
    return rows


def rules_markdown() -> str:
    """The generated README rule table, including the guard markers."""
    lines = [
        RULES_MD_BEGIN,
        "| Rule | Family | Summary | Why |",
        "| --- | --- | --- | --- |",
    ]
    for rule_id, family, summary, rationale in _rule_rows():
        lines.append(f"| `{rule_id}` | {family} | {summary} | {rationale} |")
    lines.append(RULES_MD_END)
    return "\n".join(lines)


def _replace_rules_block(text: str, block: str) -> str | None:
    """``text`` with the marked block replaced, or None if markers missing."""
    begin = text.find(RULES_MD_BEGIN)
    end = text.find(RULES_MD_END)
    if begin == -1 or end == -1 or end < begin:
        return None
    return text[:begin] + block + text[end + len(RULES_MD_END):]


def _split_rule_ids(
    raw: str,
) -> tuple[
    list[str], list[str], list[str], list[str], list[str], list[str], list[str]
]:
    """Partition ``--rules`` into (lint, flow, race, perf, memory, layer,
    unknown)."""
    from .flow.engine import FLOW_RULES
    from .layers.engine import LAYER_RULES
    from .memory.engine import MEMORY_RULES
    from .perf.engine import PERF_RULES
    from .races.engine import RACE_RULES

    lint_ids: list[str] = []
    flow_ids: list[str] = []
    race_ids: list[str] = []
    perf_ids: list[str] = []
    memory_ids: list[str] = []
    layer_ids: list[str] = []
    unknown: list[str] = []
    for part in raw.split(","):
        rule_id = part.strip()
        if not rule_id:
            continue
        if rule_id in RULES:
            lint_ids.append(rule_id)
        elif rule_id in FLOW_RULES:
            flow_ids.append(rule_id)
        elif rule_id in RACE_RULES:
            race_ids.append(rule_id)
        elif rule_id in PERF_RULES:
            perf_ids.append(rule_id)
        elif rule_id in MEMORY_RULES:
            memory_ids.append(rule_id)
        elif rule_id in LAYER_RULES:
            layer_ids.append(rule_id)
        else:
            unknown.append(rule_id)
    return lint_ids, flow_ids, race_ids, perf_ids, memory_ids, layer_ids, unknown


#: Severity ordering for the ``--fail-on`` exit-code contract.
_SEVERITY_RANK = {"note": 0, "warning": 1, "error": 2}


def _severity_of(rule_id: str) -> str:
    """The registered severity for ``rule_id`` (unknown ids rank as error)."""
    from .flow.engine import FLOW_RULES
    from .layers.engine import LAYER_RULES
    from .memory.engine import MEMORY_RULES
    from .perf.engine import PERF_RULES
    from .races.engine import RACE_RULES

    if rule_id in RULES:
        return getattr(RULES[rule_id], "severity", "error")
    for registry in (FLOW_RULES, RACE_RULES, PERF_RULES, MEMORY_RULES, LAYER_RULES):
        rule = registry.get(rule_id)
        if rule is not None:
            return getattr(rule, "severity", "error")
    return "error"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analysis for the reproduction: a determinism lint "
            "(wall-clock reads, global randomness, unordered scheduling) "
            "plus, with --flow, taint dataflow over the guard trust "
            "boundaries and FSM conformance for the TCP model."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "also run the dataflow/FSM analyses (T/S rules) and the "
            "unused-suppression check (U001)"
        ),
    )
    parser.add_argument(
        "--races",
        action="store_true",
        help=(
            "also run the static simultaneity-race rules (R001/R002) over "
            "__shared_state__ declarations and schedule sites"
        ),
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help=(
            "also run the profile-guided hot-path cost rules (P001-P006) "
            "over schedule-site callbacks and Node.receive reachability"
        ),
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help=(
            "also run the state-exhaustion rules (M001-M005) over "
            "__state_bounds__ declarations, taint surfaces and the hot set"
        ),
    )
    parser.add_argument(
        "--layers",
        action="store_true",
        help=(
            "also run the transport-purity layering rules (L001-L006) "
            "over __layer__ declarations and the import-layering "
            "manifest, including the L006 import-isolation witness"
        ),
    )
    parser.add_argument(
        "--bench",
        metavar="FILE",
        default=None,
        help=(
            "append the analyzer wall-clock to FILE as a dated "
            "trajectory (scripts/BENCH_analysis.json in CI)"
        ),
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "note"),
        default="note",
        help=(
            "lowest severity that makes the exit code nonzero (default: "
            "note — any finding fails, the historical behaviour)"
        ),
    )
    parser.add_argument(
        "--perf-profile",
        metavar="FILE",
        default="scripts/BENCH_profile.json",
        help=(
            "handler-timing profile weighting the perf rules (default: "
            "scripts/BENCH_profile.json; a missing file just disables "
            "weighting)"
        ),
    )
    parser.add_argument(
        "--sarif",
        metavar="OUT",
        default=None,
        help="write findings as SARIF 2.1.0 to OUT ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        action="append",
        default=None,
        help=(
            "subtract the accepted-findings baseline; stale entries are "
            "reported as U001 (repeatable: one file per rule family)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--rules-md",
        action="store_true",
        help="print the generated markdown rule table and exit",
    )
    parser.add_argument(
        "--rules-md-check",
        metavar="FILE",
        default=None,
        help="exit 1 if FILE's generated rule-table block is out of date",
    )
    parser.add_argument(
        "--rules-md-update",
        metavar="FILE",
        default=None,
        help="rewrite FILE's generated rule-table block in place and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_rule_table())
        return 0
    if args.rules_md:
        print(rules_markdown())
        return 0
    if args.rules_md_check or args.rules_md_update:
        target = Path(args.rules_md_check or args.rules_md_update)
        try:
            text = target.read_text(encoding="utf-8")
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        updated = _replace_rules_block(text, rules_markdown())
        if updated is None:
            print(
                f"error: {target} has no {RULES_MD_BEGIN!r} block",
                file=sys.stderr,
            )
            return 2
        if args.rules_md_update:
            if updated != text:
                target.write_text(updated, encoding="utf-8")
            return 0
        if updated != text:
            print(
                f"{target}: rule table is out of date — run "
                "python -m repro.analysis --rules-md-update "
                f"{target}",
                file=sys.stderr,
            )
            return 1
        return 0

    lint_ids = flow_ids = race_ids = perf_ids = memory_ids = layer_ids = None
    run_flow = args.flow
    run_races = args.races
    run_perf = args.perf
    run_memory = args.memory
    run_layers = args.layers
    if args.rules:
        (
            lint_ids,
            flow_ids,
            race_ids,
            perf_ids,
            memory_ids,
            layer_ids,
            unknown,
        ) = _split_rule_ids(args.rules)
        if unknown:
            print(
                f"error: unknown rule ids: {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        # asking for a family's rule implies running that engine
        run_flow = run_flow or bool(flow_ids)
        run_races = run_races or bool(race_ids)
        run_perf = run_perf or bool(perf_ids)
        run_memory = run_memory or bool(memory_ids)
        run_layers = run_layers or bool(layer_ids)

    timings: list[tuple[str, float]] = []
    # analyzer wall-clock (host time) — measures the CLI itself, never a
    # simulation; calls go through the alias so each phase reads alike
    clock = time.perf_counter
    try:
        if run_flow or run_races or run_perf or run_memory or run_layers:
            from .flow.core import load_modules
            from .flow.engine import FLOW_RULES, analyze_paths
            from .layers.engine import LAYER_RULES, analyze_layers
            from .memory.engine import MEMORY_RULES, analyze_memory
            from .perf.engine import PERF_RULES, analyze_perf
            from .races.engine import RACE_RULES, analyze_races

            tracker = SuppressionTracker()
            # one parse shared by the lint and every rule family
            t0 = clock()
            modules = load_modules(args.paths)
            parsed = {module.path: module for module in modules}
            timings.append(("parse", clock() - t0))
            t0 = clock()
            findings = lint_paths(
                args.paths, rule_ids=lint_ids, tracker=tracker, parsed=parsed
            )
            timings.append(("lint", clock() - t0))
            if run_flow and (flow_ids is None or flow_ids):
                t0 = clock()
                findings.extend(
                    analyze_paths(
                        args.paths,
                        rule_ids=flow_ids,
                        tracker=tracker,
                        modules=modules,
                    )
                )
                timings.append(("flow", clock() - t0))
            if run_races and (race_ids is None or race_ids):
                t0 = clock()
                findings.extend(
                    analyze_races(
                        args.paths,
                        rule_ids=race_ids,
                        tracker=tracker,
                        modules=modules,
                    )
                )
                timings.append(("races", clock() - t0))
            if run_perf and (perf_ids is None or perf_ids):
                t0 = clock()
                findings.extend(
                    analyze_perf(
                        args.paths,
                        rule_ids=perf_ids,
                        tracker=tracker,
                        profile=args.perf_profile,
                        modules=modules,
                    )
                )
                timings.append(("perf", clock() - t0))
            if run_memory and (memory_ids is None or memory_ids):
                t0 = clock()
                findings.extend(
                    analyze_memory(
                        args.paths,
                        rule_ids=memory_ids,
                        tracker=tracker,
                        profile=args.perf_profile,
                        modules=modules,
                    )
                )
                timings.append(("memory", clock() - t0))
            if run_layers and (layer_ids is None or layer_ids):
                t0 = clock()
                findings.extend(
                    analyze_layers(
                        args.paths,
                        rule_ids=layer_ids,
                        tracker=tracker,
                        modules=modules,
                        runtime=True,
                    )
                )
                timings.append(("layers", clock() - t0))
            known = (
                set(RULES)
                | set(FLOW_RULES)
                | set(RACE_RULES)
                | set(PERF_RULES)
                | set(MEMORY_RULES)
                | set(LAYER_RULES)
                | {SYNTAX_ERROR_RULE}
            )
            findings.extend(tracker.unused_findings(known))
        else:
            t0 = clock()
            findings = lint_paths(args.paths, rule_ids=lint_ids)
            timings.append(("lint", clock() - t0))
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.bench:
        from .bench import write_bench_analysis

        write_bench_analysis(args.bench, timings)

    for baseline_path in args.baseline or ():
        from .flow.baseline import apply_baseline, load_baseline

        try:
            entries = load_baseline(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings = apply_baseline(findings, entries, baseline_path=baseline_path)

    findings.sort(key=Finding.sort_key)
    if args.sarif:
        from .flow.sarif import to_sarif

        document = json.dumps(to_sarif(findings), indent=2)
        if args.sarif == "-":
            print(document)
        else:
            Path(args.sarif).write_text(document + "\n", encoding="utf-8")

    try:
        if args.format == "json":
            print(
                json.dumps(
                    {
                        "findings": [finding.to_dict() for finding in findings],
                        "count": len(findings),
                    },
                    indent=2,
                )
            )
        else:
            for finding in findings:
                print(finding.format_text())
            noun = "finding" if len(findings) == 1 else "findings"
            print(f"{len(findings)} {noun}")
    except BrokenPipeError:
        # reader (e.g. `| head`) closed the pipe — the verdict still stands
        sys.stderr.close()
    threshold = _SEVERITY_RANK[args.fail_on]
    failing = [
        f for f in findings if _SEVERITY_RANK.get(_severity_of(f.rule), 2) >= threshold
    ]
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
