"""``BENCH_analysis.json``: the analyzer's own wall-clock trajectory.

The analysis CLI parses every file exactly once and shares the ASTs
across all rule families; this module records what that sharing buys.
``--bench FILE`` appends a dated entry (total seconds + per-phase
breakdown, including the one shared ``parse`` phase) to the document's
``trajectory``, mirroring the simulator's ``BENCH_profile.json`` shape,
so regressions in analyzer cost show up as history rather than vibes.
"""

from __future__ import annotations

import json
import time
from typing import Iterable


def write_bench_analysis(
    path: str,
    timings: Iterable[tuple[str, float]],
    *,
    date: str | None = None,
) -> dict:
    """Write/append the analyzer timing document at ``path``.

    ``timings`` is the ordered (phase, seconds) list the CLI measured.
    An existing document's ``trajectory`` is preserved and the new run
    appended, exactly like :func:`repro.obs.profiler.write_bench_profile`.
    """
    phases = {name: round(seconds, 6) for name, seconds in timings}
    total = round(sum(phases.values()), 6)
    doc: dict = {
        "benchmark": "analysis-cli",
        "unit": "seconds",
        "value": total,
        "detail": {
            "phases": phases,
            "note": (
                "one shared parse feeds every rule family; 'parse' is "
                "counted once, not per family"
            ),
        },
    }
    if date is None:
        # host date on a host-time measurement — never feeds a simulation
        date = time.strftime("%Y-%m-%d")
    trajectory: list[dict] = []
    try:
        with open(path, encoding="utf-8") as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        previous = None
    if isinstance(previous, dict):
        recorded = previous.get("trajectory")
        if isinstance(recorded, list):
            trajectory = list(recorded)
    trajectory.append({"date": date, "seconds": total, "phases": phases})
    doc["trajectory"] = trajectory
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
