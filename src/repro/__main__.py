"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's tables and figures or run a quick demo.
Each accepts ``--fast`` for a reduced (but representative) configuration,
``--seed`` for reproducibility, and three mutually exclusive analysis
modes that replace the normal output: ``--sanitize`` (run twice, compare
event-trace hashes), ``--races`` (run under the tie-group interference
monitor, report R003/R004 simultaneity races), ``--explore N`` (run
N extra times with seeded permutations of conflicting tie groups and
assert canonical-trace invariance), and ``--memory`` (run under the
state-bounds high-water monitor and fail if any ``__state_bounds__``
declaration is exceeded, M006).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import ANS_ADDRESS, GuardTestbed, LrsSimulator
    from repro.attack import SpoofingAttacker

    bed = GuardTestbed(seed=args.seed, ans="simulator", ans_mode="answer")
    resolver_node = bed.add_client("resolver", via_local_guard=True)
    resolver = LrsSimulator(resolver_node, ANS_ADDRESS, workload="plain")
    attacker = SpoofingAttacker(
        bed.add_client("attacker"), ANS_ADDRESS, rate=50_000, carry_invalid_cookie=True
    )
    resolver.start()
    attacker.start()
    bed.run(1.0)
    print("One simulated second under a 50K req/s spoofed flood:")
    print(f"  legitimate answers: {resolver.stats.completed}")
    print(f"  forged requests dropped: {bed.guard.invalid_drops}")
    print(f"  requests reaching the ANS: {bed.ans.requests_served}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import format_table1, run_table1

    print(format_table1(run_table1(measure_latency=not args.fast, seed=args.seed)))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments.table2 import format_table2, run_table2

    print(format_table2(run_table2(seed=args.seed)))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.experiments.table3 import format_table3, run_table3

    print(format_table3(run_table3(seed=args.seed, fast=args.fast)))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments.fig5 import format_fig5, run_fig5

    points = run_fig5(seed=args.seed, fast=args.fast)
    print(format_fig5(points))
    if args.plot:
        from repro.experiments.plotting import plot_fig5

        print()
        print(plot_fig5(points))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.experiments.fig6 import format_fig6, run_fig6

    points = run_fig6(
        seed=args.seed, fast=args.fast, hybrid=getattr(args, "hybrid", False)
    )
    print(format_fig6(points))
    if args.plot:
        from repro.experiments.plotting import plot_fig6

        print()
        print(plot_fig6(points))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.experiments.fig7 import format_fig7, run_fig7

    series_a, series_b = run_fig7(seed=args.seed, fast=args.fast)
    print(format_fig7(series_a, series_b))
    if args.plot:
        from repro.experiments.plotting import plot_fig7

        print()
        print(plot_fig7(series_a, series_b))
    return 0


def _cmd_attacks(args: argparse.Namespace) -> int:
    from repro.experiments.attacks import (
        format_attack_report,
        run_amplification,
        run_cookie2_guessing,
        run_probing_attack,
        run_zombie_flood,
    )
    from repro.guard import UnverifiedResponseLimiter

    unguarded = run_amplification(guarded=False, seed=args.seed)
    guarded = run_amplification(
        guarded=True,
        seed=args.seed,
        rl1=UnverifiedResponseLimiter(per_source_rate=100.0, per_source_burst=100.0),
    )
    guessing = run_cookie2_guessing(seed=args.seed)
    zombie = run_zombie_flood(seed=args.seed)
    if args.fast:
        print(format_attack_report(unguarded, guarded, guessing, zombie))
    else:
        probing_open = run_probing_attack(rl2_enabled=False, seed=args.seed)
        probing_limited = run_probing_attack(rl2_enabled=True, seed=args.seed)
        print(
            format_attack_report(
                unguarded, guarded, guessing, zombie, probing_open, probing_limited
            )
        )
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments.ablation import (
        format_ablation,
        run_hcf_ablation,
        run_ingress_deployment,
        run_rotation_ablation,
        run_scheme_comparison,
    )

    ingress = None
    if not args.fast:
        ingress = [
            run_ingress_deployment(fraction, seed=args.seed)
            for fraction in (0.0, 0.5, 0.9, 1.0)
        ]
    print(
        format_ablation(
            run_hcf_ablation(seed=args.seed),
            run_rotation_ablation(),
            run_scheme_comparison(seed=args.seed),
            ingress,
        )
    )
    return 0


def _cmd_containment(args: argparse.Namespace) -> int:
    from repro.experiments.containment import format_containment, run_containment

    kwargs = {"attack_duration": 0.5} if args.fast else {}
    print(format_containment(run_containment(seed=args.seed, **kwargs)))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import format_sensitivity, run_sensitivity

    print(format_sensitivity(run_sensitivity()))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Assemble benchmarks/results/*.txt into one REPORT.md."""
    import pathlib

    results_dir = pathlib.Path("benchmarks/results")
    if not results_dir.is_dir():
        print("no benchmarks/results directory — run `pytest benchmarks/` first")
        return 1
    sections = []
    for path in sorted(results_dir.glob("*.txt")):
        sections.append(f"## {path.stem}\n\n```\n{path.read_text().rstrip()}\n```\n")
    report = pathlib.Path("REPORT.md")
    report.write_text(
        "# Reproduced results\n\n"
        "Generated from `benchmarks/results/` (run `pytest benchmarks/ "
        "--benchmark-only` to refresh).\n\n" + "\n".join(sections)
    )
    print(f"wrote {report} ({len(sections)} sections)")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    if getattr(args, "shards", 1) != 1 or getattr(args, "manifest", None):
        # route through the farm: same planner, same cells, same digests
        from repro.farm import run_farm
        from repro.farm.runner import main_summary

        result = run_farm(
            "faults",
            seed=args.seed,
            fast=args.fast,
            shards=args.shards,
            manifest_path=args.manifest,
            resume=args.resume,
        )
        main_summary(result)
        return 0 if not result.failed else 1
    from repro.experiments.faults import format_faults, run_faults

    print(format_faults(run_faults(seed=args.seed, fast=args.fast)))
    return 0


def _cmd_farm(args: argparse.Namespace) -> int:
    from repro.farm import matrix_names, run_farm, write_bench_farm
    from repro.farm.runner import main_summary

    if args.list:
        from repro.farm import MATRICES

        for name in matrix_names():
            print(f"{name:<10} {MATRICES[name].description}")
        return 0
    if args.bench:
        # serial vs sharded wall-clock on the same matrix, plus the
        # digest-equality witness, appended to the BENCH trajectory
        serial = run_farm(args.matrix, seed=args.seed, fast=args.fast, shards=1)
        sharded = run_farm(
            args.matrix, seed=args.seed, fast=args.fast, shards=max(2, args.shards)
        )
        equal = serial.manifest.digest() == sharded.manifest.digest()
        doc = write_bench_farm(
            args.bench,
            matrix=args.matrix,
            cells=len(serial.cells),
            serial_seconds=serial.wall_seconds,
            sharded_seconds=sharded.wall_seconds,
            shards=sharded.shards,
            digests_equal=equal,
        )
        entry = doc["trajectory"][-1]
        print(
            f"{args.matrix}: {entry['cells']} cells — serial "
            f"{entry['serial_seconds']}s vs {entry['shards']}-shard "
            f"{entry['sharded_seconds']}s (speedup {entry['speedup']}x, "
            f"digests {'equal' if equal else 'DIVERGED'})"
        )
        print(f"wrote {args.bench}")
        return 0 if equal else 1
    result = run_farm(
        args.matrix,
        seed=args.seed,
        fast=args.fast,
        shards=args.shards,
        manifest_path=args.manifest,
        resume=args.resume,
        cell_timeout=args.cell_timeout,
        stop_after=args.stop_after,
    )
    main_summary(result)
    return 0 if not result.failed else 1


def _cmd_control(args: argparse.Namespace) -> int:
    from repro.experiments.control import (
        format_control,
        run_control,
        write_bench_control,
    )

    if getattr(args, "static_only", False):
        # controller-off smoke: only the static cells run — used by
        # check.sh to sanitize a matrix in which no controller exists
        result = run_control(
            seed=args.seed, fast=args.fast, schemes=("modified", "ns_name", "tcp")
        )
    else:
        result = run_control(seed=args.seed, fast=args.fast)
    print(format_control(result))
    if getattr(args, "bench", None):
        write_bench_control(result, args.bench)
        print(f"wrote {args.bench}")
    return 0


def _cmd_fluid(args: argparse.Namespace) -> int:
    from repro.experiments.fluid import format_predictions

    print(format_predictions())
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Showcase the observability subsystem on a short guarded run."""
    from repro import ANS_ADDRESS, GuardTestbed, LrsSimulator
    from repro.attack import SpoofingAttacker
    from repro.obs import Observability, installed

    obs = Observability(profile=True)
    with installed(obs):
        bed = GuardTestbed(seed=args.seed, ans="simulator", ans_mode="answer")
        resolver_node = bed.add_client("resolver", via_local_guard=True)
        resolver = LrsSimulator(resolver_node, ANS_ADDRESS, workload="plain")
        attacker = SpoofingAttacker(
            bed.add_client("attacker"),
            ANS_ADDRESS,
            rate=5_000,
            carry_invalid_cookie=True,
        )
        obs.tap(bed.guard_node, protocol="udp", max_records=40)
        resolver.start()
        attacker.start()
        bed.run(0.25 if args.fast else 1.0)
    obs.collect()
    print(obs.report())
    if args.obs is not None:
        for path in obs.write(args.obs):
            print(f"wrote {path}")
    if getattr(args, "bench_profile", None):
        from repro.obs import write_bench_profile

        write_bench_profile(obs.profiler, args.bench_profile)
        print(f"wrote {args.bench_profile}")
    return 0


def _run_with_obs(handler, args: argparse.Namespace) -> int:
    """Run ``handler`` with a process-wide Observability installed, then
    dump whatever it gathered (run report + exports to ``--obs DIR``)."""
    from repro.obs import Observability, installed

    obs = Observability(profile=args.profile)
    with installed(obs):
        code = handler(args)
    obs.collect()
    if args.obs is not None:
        for path in obs.write(args.obs):
            print(f"wrote {path}", file=sys.stderr)
    elif obs.profiler is not None:
        print(obs.profiler.report(), file=sys.stderr)
    return code


_COMMANDS = {
    "demo": (_cmd_demo, "Run the quickstart demo: a guarded ANS under a spoofed flood"),
    "table1": (_cmd_table1, "Table I: scheme comparison"),
    "table2": (_cmd_table2, "Table II: request latency per scheme"),
    "table3": (_cmd_table3, "Table III: guard throughput per scheme"),
    "fig5": (_cmd_fig5, "Figure 5: BIND under attack, guard on/off"),
    "fig6": (_cmd_fig6, "Figure 6: guard throughput/CPU under attack"),
    "fig7": (_cmd_fig7, "Figure 7: TCP proxy throughput"),
    "attacks": (_cmd_attacks, "Attack analysis (amplification, guessing, zombies)"),
    "ablation": (_cmd_ablation, "Ablations: HCF baseline, rotation, RFC 7873"),
    "containment": (
        _cmd_containment,
        "Containment timeline: throughput as an attack starts mid-run",
    ),
    "faults": (
        _cmd_faults,
        "Fault injection: blackout/flap/loss/chaos/restart/failover per scheme",
    ),
    "farm": (
        _cmd_farm,
        "Sharded scenario farm: run a matrix across worker processes with a "
        "resumable manifest and deterministic merge",
    ),
    "control": (
        _cmd_control,
        "Adaptive overload control vs static schemes across attacks × faults",
    ),
    "fluid": (_cmd_fluid, "Analytical model predictions"),
    "report": (_cmd_report, "Assemble benchmarks/results into REPORT.md"),
    "sensitivity": (
        _cmd_sensitivity,
        "Sensitivity of qualitative claims to the CPU cost model",
    ),
    "obs": (
        _cmd_obs,
        "Observability showcase: metrics, spans, and a profile of a short run",
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DNS guard (ICDCS 2006) reproduction: experiments and demos.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (_, help_text) in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--seed", type=int, default=0, help="simulation seed")
        sub.add_argument(
            "--fast", action="store_true", help="reduced (quicker) configuration"
        )
        sub.add_argument(
            "--plot", action="store_true", help="also render an ASCII chart"
        )
        sub.add_argument(
            "--sanitize",
            action="store_true",
            help="run the command twice under the determinism sanitizer and "
            "compare event-trace hashes instead of printing results",
        )
        sub.add_argument(
            "--races",
            action="store_true",
            help="run the command under the tie-group interference monitor "
            "(R003/R004) and report simultaneity races instead of results",
        )
        sub.add_argument(
            "--explore",
            metavar="N",
            type=int,
            default=None,
            help="re-run the command N extra times with seeded permutations "
            "of conflicting tie groups and assert trace invariance",
        )
        sub.add_argument(
            "--memory",
            action="store_true",
            help="run the command under the state-bounds high-water monitor "
            "and fail if any __state_bounds__ declaration is exceeded (M006)",
        )
        sub.add_argument(
            "--obs",
            metavar="DIR",
            default=None,
            help="gather observability data (metrics, spans, run report) "
            "and export it into DIR",
        )
        sub.add_argument(
            "--profile",
            action="store_true",
            help="also profile the event loop (wall-clock, per-handler)",
        )
        if name == "obs":
            sub.add_argument(
                "--bench-profile",
                metavar="PATH",
                default=None,
                help="write the event-loop profile as a BENCH_*.json document "
                "(events/sec trajectory; e.g. scripts/BENCH_profile.json)",
            )
        if name == "fig6":
            sub.add_argument(
                "--hybrid",
                action="store_true",
                help="use the hybrid fluid/packet client mode: the bulk "
                "legitimate population runs as a fluid (10⁶ modeled stub "
                "clients) with a packet-level foreground cohort",
            )
        if name == "faults":
            sub.add_argument(
                "--shards",
                type=int,
                default=1,
                help="run the matrix across N worker processes via the farm",
            )
            sub.add_argument(
                "--manifest",
                metavar="PATH",
                default=None,
                help="persist the farm manifest (per-cell status/digests) here",
            )
            sub.add_argument(
                "--resume",
                action="store_true",
                help="resume from --manifest, skipping cells already done",
            )
        if name == "farm":
            sub.add_argument(
                "--matrix",
                default="faults",
                help="which scenario matrix to run (see --list)",
            )
            sub.add_argument(
                "--shards",
                type=int,
                default=1,
                help="number of worker processes (1 = in-process serial)",
            )
            sub.add_argument(
                "--manifest",
                metavar="PATH",
                default=None,
                help="persist the resumable manifest (per-cell status, result "
                "digest, trace hash) to PATH",
            )
            sub.add_argument(
                "--resume",
                action="store_true",
                help="resume from --manifest, skipping cells already done",
            )
            sub.add_argument(
                "--stop-after",
                metavar="N",
                type=int,
                default=None,
                help="run at most N pending cells then stop (deterministic "
                "stand-in for a killed run; finish with --resume)",
            )
            sub.add_argument(
                "--cell-timeout",
                metavar="SECONDS",
                type=float,
                default=300.0,
                help="per-cell wall-clock timeout in sharded runs "
                "(default 300)",
            )
            sub.add_argument(
                "--bench",
                metavar="PATH",
                default=None,
                help="time serial vs sharded execution of the matrix and "
                "append a dated entry to this BENCH_farm.json trajectory",
            )
            sub.add_argument(
                "--list",
                action="store_true",
                help="list the registered matrices and exit",
            )
        if name == "control":
            sub.add_argument(
                "--bench",
                metavar="PATH",
                default=None,
                help="append this run's headline numbers to a dated "
                "BENCH_control.json trajectory",
            )
            sub.add_argument(
                "--static-only",
                action="store_true",
                help="run only the static-scheme cells (no controller "
                "constructed) — the sanitize-parity smoke configuration",
            )
    args = parser.parse_args(argv)
    handler, _ = _COMMANDS[args.command]

    def invoke() -> int:
        # the `obs` command manages its own Observability instance
        if args.command != "obs" and (args.obs is not None or args.profile):
            return _run_with_obs(handler, args)
        return handler(args)

    modes = [
        name
        for name, active in (
            ("--sanitize", args.sanitize),
            ("--races", args.races),
            ("--explore", args.explore is not None),
            ("--memory", args.memory),
        )
        if active
    ]
    if len(modes) > 1:
        parser.error(f"{' and '.join(modes)} are mutually exclusive")
    if args.command == "farm" and modes:
        # farm cells already run under per-cell trace capture (the manifest's
        # trace hashes); nesting a second process-global collector is invalid
        parser.error(
            f"{modes[0]} is not supported for `farm` — per-cell trace hashes "
            "in the manifest are the farm's determinism witness"
        )
    if args.command == "faults" and modes and (args.shards != 1 or args.manifest):
        parser.error(f"{modes[0]} cannot be combined with --shards/--manifest")

    if args.sanitize:
        from repro.analysis.sanitizer import run_sanitized

        report = run_sanitized(invoke)
        print(report.summary())
        return 0 if report.matched else 1
    if args.races:
        from repro.analysis.races import run_monitored

        report = run_monitored(invoke)
        print(report.summary())
        return 0 if report.ok else 1
    if args.explore is not None:
        from repro.analysis.races import explore

        report = explore(invoke, permutations=args.explore, seed=args.seed)
        print(report.summary())
        return 0 if report.invariant else 1
    if args.memory:
        from repro.analysis.memory import run_bounds_monitored

        report = run_bounds_monitored(invoke)
        print(report.summary())
        return 0 if report.ok else 1
    return invoke()


if __name__ == "__main__":
    sys.exit(main())
