"""The modified-DNS cookie extension (paper §III.D, Figure 3b).

A cookie rides in the additional-RR section as a TXT record owned by the
root name with TTL 0.  The RData holds one 16-byte character-string: the
cookie.  An all-zero cookie in a query means "I do not know your cookie
yet — please tell me" (message 2 of Figure 3a); the remote guard answers
with the correct cookie in the same format (message 3), sized identically
so there is no traffic amplification.
"""

from __future__ import annotations

from .message import Message, ResourceRecord
from .name import Name
from .rdata import TXT
from .types import RRClass, RRType

#: Cookie length carried by the extension (the paper uses MD5's 16 bytes).
COOKIE_LENGTH = 16

#: The all-zero cookie: "please send me my cookie".
ZERO_COOKIE = bytes(COOKIE_LENGTH)


def cookie_rr(cookie: bytes) -> ResourceRecord:
    """The additional-section TXT record carrying ``cookie`` (Fig 3b)."""
    if len(cookie) != COOKIE_LENGTH:
        raise ValueError(f"cookie must be {COOKIE_LENGTH} bytes, got {len(cookie)}")
    return ResourceRecord(Name.root(), RRType.TXT, RRClass.IN, 0, TXT.single(cookie))


def attach_cookie(message: Message, cookie: bytes) -> Message:
    """Attach (or replace) the cookie record on ``message`` in place."""
    strip_cookie(message)
    message.additionals.append(cookie_rr(cookie))
    return message


def extract_cookie(message: Message) -> bytes | None:
    """The cookie carried by ``message``, or ``None`` if not cookie-capable.

    Only a root-owned TXT record in the additional section with exactly
    ``COOKIE_LENGTH`` bytes of payload is recognised; anything else is left
    untouched so the extension never collides with ordinary TXT usage.
    """
    for rr in message.additionals:
        if (
            rr.rtype == RRType.TXT
            and rr.name.is_root()
            and isinstance(rr.rdata, TXT)
            and len(rr.rdata.payload) == COOKIE_LENGTH
        ):
            return rr.rdata.payload
    return None


def strip_cookie(message: Message) -> Message:
    """Remove any cookie record so the protected ANS never sees the extension."""
    message.additionals = [
        rr
        for rr in message.additionals
        if not (
            rr.rtype == RRType.TXT
            and rr.name.is_root()
            and isinstance(rr.rdata, TXT)
            and len(rr.rdata.payload) == COOKIE_LENGTH
        )
    ]
    return message


def is_cookie_request(message: Message) -> bool:
    """True if ``message`` carries the all-zero "send me a cookie" marker."""
    return extract_cookie(message) == ZERO_COOKIE
