"""Domain names: parsing, wire encoding and compression (RFC 1035 §3.1, §4.1.4).

A :class:`Name` is an immutable tuple of labels stored as ``bytes``.  Label
comparison is case-insensitive, as required by RFC 1035 §2.3.3, but the
original case is preserved for presentation.  Compression pointers are
supported on both encode and decode; decoding enforces the usual
pointer-must-go-backwards rule so that malicious messages cannot loop the
parser.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .errors import DecodeError, NameError_
from .types import MAX_LABEL_LENGTH, MAX_NAME_LENGTH

_POINTER_MASK = 0xC0

#: Bounded intern table for :meth:`Name.from_text`.  Workloads parse the
#: same handful of presentation-format names once per event; interning
#: makes the repeat parse a dict hit.  The cap bounds memory against
#: adversarial inputs (e.g. a label sprayer feeding fresh names forever).
_INTERN_LIMIT = 4096
_interned: dict[str, "Name"] = {}  # repro: allow[L003] - bounded content-addressed memo, replay-invisible


class Name:
    """An immutable, case-preserving DNS domain name."""

    __slots__ = ("_labels", "_key")

    def __init__(self, labels: Iterable[bytes | str] = ()):
        normalized: list[bytes] = []
        for label in labels:
            if isinstance(label, str):
                label = label.encode("ascii")
            if not label:
                raise NameError_("empty label inside a name")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(
                    f"label {label[:16]!r}... is {len(label)} bytes; max is {MAX_LABEL_LENGTH}"
                )
            normalized.append(bytes(label))
        self._labels: tuple[bytes, ...] = tuple(normalized)
        # wire length: one length byte per label + label bytes + root byte
        wire_len = sum(len(l) + 1 for l in self._labels) + 1
        if wire_len > MAX_NAME_LENGTH:
            raise NameError_(f"name is {wire_len} bytes on the wire; max is {MAX_NAME_LENGTH}")
        self._key = tuple(l.lower() for l in self._labels)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse a presentation-format name such as ``"www.foo.com."``.

        Results are interned (case-preserving, keyed by the exact text) so
        hot paths parsing the same names repeatedly share one immutable
        :class:`Name` instead of re-tokenising.
        """
        cached = _interned.get(text)
        if cached is not None:
            return cached
        stripped = text.strip()
        if stripped in ("", "."):
            name = cls(())
        else:
            if stripped.endswith("."):
                stripped = stripped[:-1]
            name = cls(part.encode("ascii") for part in stripped.split("."))
        if cls is Name:  # never intern subclasses under the base table
            if len(_interned) >= _INTERN_LIMIT:
                _interned.clear()
            _interned[text] = name
        return name

    @classmethod
    def root(cls) -> "Name":
        """The root name ``.``."""
        return cls(())

    # -- structure ---------------------------------------------------------

    @property
    def labels(self) -> tuple[bytes, ...]:
        return self._labels

    def is_root(self) -> bool:
        return not self._labels

    def parent(self) -> "Name":
        """The name with the leftmost label removed; root's parent is root."""
        if self.is_root():
            return self
        return Name(self._labels[1:])

    def child(self, label: bytes | str) -> "Name":
        """Prepend ``label``, producing a subdomain of this name."""
        return Name((label, *self._labels))

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if ``self`` equals ``other`` or lies beneath it."""
        if len(other._key) > len(self._key):
            return False
        if not other._key:
            return True
        return self._key[-len(other._key):] == other._key

    def relativize(self, origin: "Name") -> tuple[bytes, ...]:
        """Labels of ``self`` below ``origin``; raises if not a subdomain."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        n = len(origin._key)
        return self._labels[: len(self._labels) - n]

    def wire_length(self) -> int:
        """Uncompressed length of this name on the wire."""
        return sum(len(l) + 1 for l in self._labels) + 1

    # -- wire codec --------------------------------------------------------

    def encode(self, buffer: bytearray, offsets: dict["Name", int] | None = None) -> None:
        """Append this name to ``buffer``, optionally using compression.

        ``offsets`` maps previously written names to their buffer offsets;
        when provided, suffixes already present are emitted as compression
        pointers and new suffixes are recorded.
        """
        remaining = self
        while True:
            if offsets is not None and not remaining.is_root():
                target = offsets.get(remaining)
                if target is not None and target < 0x4000:
                    buffer += bytes(((_POINTER_MASK | (target >> 8)), target & 0xFF))
                    return
                if len(buffer) < 0x4000:
                    offsets[remaining] = len(buffer)
            if remaining.is_root():
                buffer.append(0)
                return
            label = remaining._labels[0]
            buffer.append(len(label))
            buffer += label
            remaining = remaining.parent()

    @classmethod
    def decode(cls, data: bytes, offset: int) -> tuple["Name", int]:
        """Parse a (possibly compressed) name at ``offset``.

        Returns the name and the offset of the first byte after it in the
        *uncompressed* stream (i.e. after the pointer, if one was followed).
        """
        labels: list[bytes] = []
        end: int | None = None
        seen_offsets: set[int] = set()
        pos = offset
        total = 0
        while True:
            if pos >= len(data):
                raise DecodeError("name runs past end of message")
            length = data[pos]
            if length & _POINTER_MASK == _POINTER_MASK:
                if pos + 1 >= len(data):
                    raise DecodeError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | data[pos + 1]
                if end is None:
                    end = pos + 2
                if target >= pos or target in seen_offsets:
                    raise DecodeError("compression pointer does not go strictly backwards")
                seen_offsets.add(target)
                pos = target
                continue
            if length & _POINTER_MASK:
                raise DecodeError(f"reserved label type 0x{length & _POINTER_MASK:02x}")
            pos += 1
            if length == 0:
                if end is None:
                    end = pos
                break
            if pos + length > len(data):
                raise DecodeError("label runs past end of message")
            total += length + 1
            if total + 1 > MAX_NAME_LENGTH:
                raise DecodeError("decoded name exceeds 255 bytes")
            labels.append(data[pos : pos + length])
            pos += length
        return cls(labels), end

    def to_wire(self) -> bytes:
        """Uncompressed wire form of this name."""
        buf = bytearray()
        self.encode(buf, offsets=None)
        return bytes(buf)

    # -- dunder ------------------------------------------------------------

    def __str__(self) -> str:
        if self.is_root():
            return "."
        return ".".join(l.decode("ascii", "backslashreplace") for l in self._labels) + "."

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._labels)

    def __lt__(self, other: "Name") -> bool:
        # Canonical ordering: compare label sequences right-to-left, the way
        # DNSSEC canonical ordering does, so siblings group under parents.
        return tuple(reversed(self._key)) < tuple(reversed(other._key))


ROOT = Name.root()
