"""RFC 1035 DNS wire format: names, records, messages, and the cookie extension."""

from .errors import DecodeError, EncodeError, NameError_, WireError
from .header import HEADER_SIZE, Header
from .message import MAX_UDP_PAYLOAD, Message, Question, ResourceRecord
from .name import ROOT, Name
from .rdata import A, AAAA, CNAME, MX, NS, OPT, PTR, SOA, SRV, TXT, Opaque, Rdata
from .types import Opcode, Rcode, RRClass, RRType
from .builder import (
    a_record,
    make_query,
    make_response,
    make_truncated_response,
    ns_record,
    soa_record,
)
from .cookie_ext import (
    COOKIE_LENGTH,
    ZERO_COOKIE,
    attach_cookie,
    cookie_rr,
    extract_cookie,
    is_cookie_request,
    strip_cookie,
)

__layer__ = "pure-core"

__all__ = [
    "A",
    "AAAA",
    "CNAME",
    "COOKIE_LENGTH",
    "DecodeError",
    "EncodeError",
    "HEADER_SIZE",
    "Header",
    "MAX_UDP_PAYLOAD",
    "MX",
    "Message",
    "NS",
    "Name",
    "NameError_",
    "OPT",
    "Opaque",
    "Opcode",
    "PTR",
    "Question",
    "ROOT",
    "RRClass",
    "RRType",
    "Rcode",
    "Rdata",
    "ResourceRecord",
    "SOA",
    "SRV",
    "TXT",
    "WireError",
    "ZERO_COOKIE",
    "a_record",
    "attach_cookie",
    "cookie_rr",
    "extract_cookie",
    "is_cookie_request",
    "make_query",
    "make_response",
    "make_truncated_response",
    "ns_record",
    "soa_record",
    "strip_cookie",
]
