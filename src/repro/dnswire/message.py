"""Full DNS messages: questions, resource records, and the message codec.

The codec implements RFC 1035 §4: header, question section, and three
resource-record sections, with name compression on output and strict
bounds-checked parsing on input.  ``Message.encode(max_size=...)`` performs
the truncation dance the TCP-based guard scheme relies on: if the encoded
message exceeds the UDP limit, answer records are dropped and the TC bit is
set.
"""

from __future__ import annotations

import dataclasses
import struct

from .errors import DecodeError
from .header import HEADER_SIZE, Header
from .name import Name
from .rdata import Rdata
from .types import MAX_UDP_PAYLOAD, Opcode, Rcode, RRClass, RRType


@dataclasses.dataclass(frozen=True, slots=True)
class Question:
    """One entry of the question section."""

    qname: Name
    qtype: int = RRType.A
    qclass: int = RRClass.IN

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        self.qname.encode(buffer, offsets)
        buffer += struct.pack("!HH", self.qtype, self.qclass)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> tuple["Question", int]:
        qname, offset = Name.decode(data, offset)
        if offset + 4 > len(data):
            raise DecodeError("question section truncated")
        qtype, qclass = struct.unpack_from("!HH", data, offset)
        return cls(qname, qtype, qclass), offset + 4


@dataclasses.dataclass(frozen=True, slots=True)
class ResourceRecord:
    """One resource record: owner name, type, class, TTL and typed RDATA."""

    name: Name
    rtype: int
    rclass: int
    ttl: int
    rdata: Rdata

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        self.name.encode(buffer, offsets)
        buffer += struct.pack("!HHI", self.rtype, self.rclass, self.ttl & 0xFFFFFFFF)
        length_at = len(buffer)
        buffer += b"\x00\x00"
        self.rdata.encode(buffer, offsets)
        rdlength = len(buffer) - length_at - 2
        struct.pack_into("!H", buffer, length_at, rdlength)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> tuple["ResourceRecord", int]:
        name, offset = Name.decode(data, offset)
        if offset + 10 > len(data):
            raise DecodeError("resource record header truncated")
        rtype, rclass, ttl, rdlength = struct.unpack_from("!HHIH", data, offset)
        offset += 10
        if offset + rdlength > len(data):
            raise DecodeError("RDATA runs past end of message")
        rdata = Rdata.class_for(rtype).decode(data, offset, rdlength)
        return cls(name, rtype, rclass, ttl, rdata), offset + rdlength


@dataclasses.dataclass(slots=True)
class Message:
    """A complete DNS message."""

    header: Header = dataclasses.field(default_factory=Header)
    questions: list[Question] = dataclasses.field(default_factory=list)
    answers: list[ResourceRecord] = dataclasses.field(default_factory=list)
    authorities: list[ResourceRecord] = dataclasses.field(default_factory=list)
    additionals: list[ResourceRecord] = dataclasses.field(default_factory=list)
    #: memoized compressed wire form, set by :meth:`freeze` — the message
    #: must not be mutated after freezing (never part of equality/repr)
    _wire: bytes | None = dataclasses.field(
        default=None, repr=False, compare=False
    )

    # -- inspection --------------------------------------------------------

    @property
    def question(self) -> Question:
        """The sole question; raises if the message has none."""
        if not self.questions:
            raise DecodeError("message has no question section")
        return self.questions[0]

    def is_query(self) -> bool:
        return not self.header.qr

    def is_response(self) -> bool:
        return self.header.qr

    def records(self, section: str, rtype: int | None = None) -> list[ResourceRecord]:
        """Records of ``section`` (answer/authority/additional), optionally by type."""
        table = {
            "answer": self.answers,
            "authority": self.authorities,
            "additional": self.additionals,
        }
        rrs = table[section]
        if rtype is None:
            return list(rrs)
        return [rr for rr in rrs if rr.rtype == rtype]

    # -- codec -------------------------------------------------------------

    def encode(self, max_size: int | None = None, compress: bool = True) -> bytes:
        """Serialise to wire format.

        If ``max_size`` is given and the message does not fit, RR sections
        are emptied and the TC bit is set — this is the RFC 1035 truncation
        signal that redirects requesters to TCP.
        """
        if compress and self._wire is not None:
            wire = self._wire
        else:
            wire = self._encode_once(compress)
        if max_size is not None and len(wire) > max_size:
            truncated = Message(
                header=dataclasses.replace(self.header, tc=True),
                questions=list(self.questions),
            )
            wire = truncated._encode_once(compress)
        return wire

    def freeze(self) -> "Message":
        """Memoize the compressed wire form; further mutation is a bug.

        Per-packet paths build many identical messages (attack templates,
        per-qname responses); freezing once turns every later
        :meth:`encode` / :meth:`wire_size` into a cached lookup.
        """
        if self._wire is None:
            self._wire = self._encode_once(True)
        return self

    def _encode_once(self, compress: bool) -> bytes:
        header = dataclasses.replace(
            self.header,
            qdcount=len(self.questions),
            ancount=len(self.answers),
            nscount=len(self.authorities),
            arcount=len(self.additionals),
        )
        buffer = bytearray(header.encode())
        offsets: dict[Name, int] | None = {} if compress else None
        for question in self.questions:
            question.encode(buffer, offsets)
        for rr in (*self.answers, *self.authorities, *self.additionals):
            rr.encode(buffer, offsets)
        return bytes(buffer)

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        header, offset = Header.decode(data)
        msg = cls(header=header)
        for _ in range(header.qdcount):
            question, offset = Question.decode(data, offset)
            msg.questions.append(question)
        for count, section in (
            (header.ancount, msg.answers),
            (header.nscount, msg.authorities),
            (header.arcount, msg.additionals),
        ):
            for _ in range(count):
                rr, offset = ResourceRecord.decode(data, offset)
                section.append(rr)
        return msg

    def wire_size(self) -> int:
        """Size of the encoded message in bytes (with compression)."""
        if self._wire is not None:
            return len(self._wire)
        return len(self.encode())

    def __str__(self) -> str:
        flags = []
        h = self.header
        for bit in ("qr", "aa", "tc", "rd", "ra"):
            if getattr(h, bit):
                flags.append(bit)
        parts = [
            f"id={h.msg_id} {Opcode(h.opcode).name} {Rcode(h.rcode).name} [{' '.join(flags)}]"
        ]
        for q in self.questions:
            parts.append(f"  ? {q.qname} {RRType.name_of(q.qtype)}")
        for tag, rrs in (("an", self.answers), ("ns", self.authorities), ("ar", self.additionals)):
            for rr in rrs:
                parts.append(f"  {tag} {rr.name} {rr.ttl} {RRType.name_of(rr.rtype)} {rr.rdata!r}")
        return "\n".join(parts)


#: Minimum on-the-wire IP packet size for a DNS request that the paper quotes
#: ("around 50 bytes") when reasoning about amplification ratios.
TYPICAL_REQUEST_IP_BYTES = 50

__all__ = [
    "Question",
    "ResourceRecord",
    "Message",
    "HEADER_SIZE",
    "MAX_UDP_PAYLOAD",
    "TYPICAL_REQUEST_IP_BYTES",
]
