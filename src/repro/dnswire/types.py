"""DNS protocol constants (RFC 1035 and friends).

These enums cover the record types, classes, opcodes and response codes
that the DNS guard testbed exercises.  Unknown values are preserved
numerically rather than rejected, matching how real resolvers treat
unrecognised types.
"""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """Resource record TYPE values (RFC 1035 §3.2.2, plus AAAA/OPT)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    OPT = 41  # EDNS(0), used by the RFC 7873 extension
    AXFR = 252  # QTYPE only: full zone transfer (RFC 5936)

    @classmethod
    def name_of(cls, value: int) -> str:
        """Human-readable name for a TYPE value, e.g. ``TYPE255`` if unknown."""
        try:
            return cls(value).name
        except ValueError:
            return f"TYPE{value}"


class RRClass(enum.IntEnum):
    """Resource record CLASS values (RFC 1035 §3.2.4)."""

    IN = 1
    CH = 3
    HS = 4
    ANY = 255


class Opcode(enum.IntEnum):
    """DNS header OPCODE values."""

    QUERY = 0
    IQUERY = 1
    STATUS = 2


class Rcode(enum.IntEnum):
    """DNS header RCODE values."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


#: Maximum UDP payload for classic DNS (RFC 1035 §4.2.1).  Responses larger
#: than this are truncated, which is the hook the TCP-based guard scheme uses.
MAX_UDP_PAYLOAD = 512

#: Maximum length of a single label (RFC 1035 §2.3.4).
MAX_LABEL_LENGTH = 63

#: Maximum length of a full domain name on the wire (RFC 1035 §2.3.4).
MAX_NAME_LENGTH = 255
