"""Convenience constructors for common DNS messages.

These helpers keep the server, resolver and guard code free of repetitive
header plumbing.  Message IDs are supplied by callers (servers echo the
query ID; resolvers draw from their seeded RNG).
"""

from __future__ import annotations

import dataclasses
from ipaddress import IPv4Address

from .header import Header
from .message import Message, Question, ResourceRecord
from .name import Name
from .rdata import A, NS, SOA
from .types import Opcode, Rcode, RRClass, RRType


def make_query(
    qname: Name | str,
    qtype: int = RRType.A,
    *,
    msg_id: int = 0,
    recursion_desired: bool = False,
) -> Message:
    """Build a standard query for ``qname``/``qtype``."""
    if isinstance(qname, str):
        qname = Name.from_text(qname)
    return Message(
        header=Header(msg_id=msg_id, opcode=Opcode.QUERY, rd=recursion_desired),
        questions=[Question(qname, qtype, RRClass.IN)],
    )


def make_response(
    query: Message,
    *,
    rcode: int = Rcode.NOERROR,
    authoritative: bool = False,
    recursion_available: bool = False,
) -> Message:
    """Build an empty response echoing ``query``'s ID and question."""
    return Message(
        header=Header(
            msg_id=query.header.msg_id,
            qr=True,
            opcode=query.header.opcode,
            aa=authoritative,
            rd=query.header.rd,
            ra=recursion_available,
            rcode=rcode,
        ),
        questions=list(query.questions),
    )


def make_truncated_response(query: Message) -> Message:
    """A minimal TC=1 response: the signal to retry the query over TCP."""
    response = make_response(query)
    response.header = dataclasses.replace(response.header, tc=True)
    return response


def a_record(name: Name | str, address: IPv4Address | str | int, ttl: int = 3600) -> ResourceRecord:
    """An A resource record."""
    if isinstance(name, str):
        name = Name.from_text(name)
    if not isinstance(address, IPv4Address):
        address = IPv4Address(address)
    return ResourceRecord(name, RRType.A, RRClass.IN, ttl, A(address))


def ns_record(zone: Name | str, nsdname: Name | str, ttl: int = 3600) -> ResourceRecord:
    """An NS resource record delegating ``zone`` to ``nsdname``."""
    if isinstance(zone, str):
        zone = Name.from_text(zone)
    if isinstance(nsdname, str):
        nsdname = Name.from_text(nsdname)
    return ResourceRecord(zone, RRType.NS, RRClass.IN, ttl, NS(nsdname))


def soa_record(
    zone: Name | str,
    *,
    mname: Name | str = "ns1.invalid.",
    rname: Name | str = "hostmaster.invalid.",
    serial: int = 1,
    ttl: int = 3600,
    minimum: int = 300,
) -> ResourceRecord:
    """A start-of-authority record with sane testbed defaults."""
    if isinstance(zone, str):
        zone = Name.from_text(zone)
    if isinstance(mname, str):
        mname = Name.from_text(mname)
    if isinstance(rname, str):
        rname = Name.from_text(rname)
    rdata = SOA(mname, rname, serial, 7200, 1800, 1209600, minimum)
    return ResourceRecord(zone, RRType.SOA, RRClass.IN, ttl, rdata)
