"""Exceptions raised by the DNS wire-format codec."""

from __future__ import annotations


class WireError(Exception):
    """Base class for DNS wire-format problems."""


class NameError_(WireError):
    """A domain name violates RFC 1035 length or syntax limits."""


class DecodeError(WireError):
    """A DNS message could not be parsed from its wire representation."""


class EncodeError(WireError):
    """A DNS message could not be serialised to wire format."""
