"""Resource-record data (RDATA) types (RFC 1035 §3.3, §3.4; RFC 3596).

Each RDATA class knows how to encode itself into a message buffer (with name
compression where the RFC permits it) and decode itself from the wire.  The
``OPT`` pseudo-record used by the RFC 7873 DNS-cookie extension carries raw
EDNS options.
"""

from __future__ import annotations

import dataclasses
import struct
from ipaddress import IPv4Address, IPv6Address
from typing import ClassVar

from .errors import DecodeError, EncodeError
from .name import Name
from .types import RRType

_RDATA_REGISTRY: dict[int, type["Rdata"]] = {}  # repro: allow[L003] - filled once at import by @register, read-only after


def register(rtype: int):
    """Class decorator that registers an :class:`Rdata` subclass for a TYPE."""

    def wrap(cls: type["Rdata"]) -> type["Rdata"]:
        cls.rtype = rtype
        _RDATA_REGISTRY[int(rtype)] = cls
        return cls

    return wrap


class Rdata:
    """Base class for typed RDATA."""

    __slots__ = ()

    rtype: ClassVar[int]

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        raise NotImplementedError

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "Rdata":
        raise NotImplementedError

    @staticmethod
    def class_for(rtype: int) -> type["Rdata"]:
        try:
            return _RDATA_REGISTRY[int(rtype)]
        except KeyError:
            return Opaque


@dataclasses.dataclass(frozen=True, slots=True)
class Opaque(Rdata):
    """Uninterpreted RDATA for record types we do not model."""

    data: bytes

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        buffer += self.data

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "Opaque":
        return cls(data[offset : offset + rdlength])


@register(RRType.A)
@dataclasses.dataclass(frozen=True, slots=True)
class A(Rdata):
    """IPv4 address record."""

    address: IPv4Address

    def __post_init__(self) -> None:
        if not isinstance(self.address, IPv4Address):
            object.__setattr__(self, "address", IPv4Address(self.address))

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        buffer += self.address.packed

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "A":
        if rdlength != 4:
            raise DecodeError(f"A record rdlength {rdlength} != 4")
        return cls(IPv4Address(data[offset : offset + 4]))


@register(RRType.AAAA)
@dataclasses.dataclass(frozen=True, slots=True)
class AAAA(Rdata):
    """IPv6 address record."""

    address: IPv6Address

    def __post_init__(self) -> None:
        if not isinstance(self.address, IPv6Address):
            object.__setattr__(self, "address", IPv6Address(self.address))

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        buffer += self.address.packed

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "AAAA":
        if rdlength != 16:
            raise DecodeError(f"AAAA record rdlength {rdlength} != 16")
        return cls(IPv6Address(data[offset : offset + 16]))


class _SingleName(Rdata):
    """Shared implementation for RDATA that is one compressible name."""

    __slots__ = ("target",)

    def __init__(self, target: Name | str):
        self.target = Name.from_text(target) if isinstance(target, str) else target

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        self.target.encode(buffer, offsets)

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int):
        name, _ = Name.decode(data, offset)
        return cls(name)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.target == self.target  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.target))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.target})"


@register(RRType.NS)
class NS(_SingleName):
    """Name-server record — the vehicle for the NS-name cookie scheme."""

    __slots__ = ()


@register(RRType.CNAME)
class CNAME(_SingleName):
    """Canonical-name alias record."""

    __slots__ = ()


@register(RRType.PTR)
class PTR(_SingleName):
    """Pointer record (reverse lookups)."""

    __slots__ = ()


@register(RRType.MX)
@dataclasses.dataclass(frozen=True, slots=True)
class MX(Rdata):
    """Mail-exchanger record."""

    preference: int
    exchange: Name

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        buffer += struct.pack("!H", self.preference)
        self.exchange.encode(buffer, offsets)

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "MX":
        if rdlength < 3:
            raise DecodeError("MX record too short")
        (pref,) = struct.unpack_from("!H", data, offset)
        exchange, _ = Name.decode(data, offset + 2)
        return cls(pref, exchange)


@register(RRType.SRV)
@dataclasses.dataclass(frozen=True, slots=True)
class SRV(Rdata):
    """Service-location record (RFC 2782)."""

    priority: int
    weight: int
    port: int
    target: Name

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        buffer += struct.pack("!HHH", self.priority, self.weight, self.port)
        # RFC 2782 forbids compressing the SRV target
        self.target.encode(buffer, offsets=None)

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "SRV":
        if rdlength < 7:
            raise DecodeError("SRV record too short")
        priority, weight, port = struct.unpack_from("!HHH", data, offset)
        target, _ = Name.decode(data, offset + 6)
        return cls(priority, weight, port, target)


@register(RRType.SOA)
@dataclasses.dataclass(frozen=True, slots=True)
class SOA(Rdata):
    """Start-of-authority record."""

    mname: Name
    rname: Name
    serial: int
    refresh: int
    retry: int
    expire: int
    minimum: int

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        self.mname.encode(buffer, offsets)
        self.rname.encode(buffer, offsets)
        buffer += struct.pack(
            "!IIIII", self.serial, self.refresh, self.retry, self.expire, self.minimum
        )

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "SOA":
        mname, offset = Name.decode(data, offset)
        rname, offset = Name.decode(data, offset)
        if offset + 20 > len(data):
            raise DecodeError("SOA record too short")
        serial, refresh, retry, expire, minimum = struct.unpack_from("!IIIII", data, offset)
        return cls(mname, rname, serial, refresh, retry, expire, minimum)


@register(RRType.TXT)
@dataclasses.dataclass(frozen=True, slots=True)
class TXT(Rdata):
    """Text record — carries the cookie in the modified-DNS scheme (Fig 3b)."""

    strings: tuple[bytes, ...]

    def __post_init__(self) -> None:
        normalized = tuple(
            s.encode("ascii") if isinstance(s, str) else bytes(s) for s in self.strings
        )
        for s in normalized:
            if len(s) > 255:
                raise EncodeError("TXT character-string longer than 255 bytes")
        object.__setattr__(self, "strings", normalized)

    @classmethod
    def single(cls, payload: bytes | str) -> "TXT":
        """A TXT record holding one character-string."""
        return cls((payload,))

    @property
    def payload(self) -> bytes:
        """All character-strings joined — convenient for cookie extraction."""
        return b"".join(self.strings)

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        for s in self.strings:
            buffer.append(len(s))
            buffer += s

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "TXT":
        end = offset + rdlength
        strings: list[bytes] = []
        while offset < end:
            length = data[offset]
            offset += 1
            if offset + length > end:
                raise DecodeError("TXT character-string runs past RDATA")
            strings.append(data[offset : offset + length])
            offset += length
        return cls(tuple(strings))


@register(RRType.OPT)
@dataclasses.dataclass(frozen=True, slots=True)
class OPT(Rdata):
    """EDNS(0) pseudo-record RDATA: a sequence of (code, data) options.

    Used only by the RFC 7873 DNS-cookie extension module; classic-1035
    messages in the paper never carry it.
    """

    options: tuple[tuple[int, bytes], ...] = ()

    def encode(self, buffer: bytearray, offsets: dict[Name, int] | None) -> None:
        for code, payload in self.options:
            buffer += struct.pack("!HH", code, len(payload))
            buffer += payload

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "OPT":
        end = offset + rdlength
        options: list[tuple[int, bytes]] = []
        while offset < end:
            if offset + 4 > end:
                raise DecodeError("EDNS option header runs past RDATA")
            code, length = struct.unpack_from("!HH", data, offset)
            offset += 4
            if offset + length > end:
                raise DecodeError("EDNS option data runs past RDATA")
            options.append((code, data[offset : offset + length]))
            offset += length
        return cls(tuple(options))

    def option(self, code: int) -> bytes | None:
        """The first option payload with ``code``, or ``None``."""
        for c, payload in self.options:
            if c == code:
                return payload
        return None
