"""DNS message header (RFC 1035 §4.1.1)."""

from __future__ import annotations

import dataclasses
import struct

from .errors import DecodeError
from .types import Opcode, Rcode

_HEADER = struct.Struct("!HHHHHH")

#: Size of the fixed DNS header in bytes.
HEADER_SIZE = _HEADER.size


@dataclasses.dataclass(slots=True)
class Header:
    """The fixed 12-byte DNS header.

    Field names follow RFC 1035: ``qr`` response flag, ``aa`` authoritative
    answer, ``tc`` truncation, ``rd`` recursion desired, ``ra`` recursion
    available.  The four counts are filled in by the message codec.
    """

    msg_id: int = 0
    qr: bool = False
    opcode: int = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = False
    ra: bool = False
    rcode: int = Rcode.NOERROR
    qdcount: int = 0
    ancount: int = 0
    nscount: int = 0
    arcount: int = 0

    def flags_word(self) -> int:
        """The 16-bit flags field."""
        word = 0
        if self.qr:
            word |= 0x8000
        word |= (self.opcode & 0xF) << 11
        if self.aa:
            word |= 0x0400
        if self.tc:
            word |= 0x0200
        if self.rd:
            word |= 0x0100
        if self.ra:
            word |= 0x0080
        word |= self.rcode & 0xF
        return word

    def encode(self) -> bytes:
        return _HEADER.pack(
            self.msg_id & 0xFFFF,
            self.flags_word(),
            self.qdcount,
            self.ancount,
            self.nscount,
            self.arcount,
        )

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["Header", int]:
        if len(data) - offset < HEADER_SIZE:
            raise DecodeError("message shorter than DNS header")
        msg_id, flags, qd, an, ns, ar = _HEADER.unpack_from(data, offset)
        header = cls(
            msg_id=msg_id,
            qr=bool(flags & 0x8000),
            opcode=(flags >> 11) & 0xF,
            aa=bool(flags & 0x0400),
            tc=bool(flags & 0x0200),
            rd=bool(flags & 0x0100),
            ra=bool(flags & 0x0080),
            rcode=flags & 0xF,
            qdcount=qd,
            ancount=an,
            nscount=ns,
            arcount=ar,
        )
        return header, offset + HEADER_SIZE
