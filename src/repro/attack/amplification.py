"""Reflection/amplification attack and measurement (paper §I, §III.G).

The attacker crafts small requests whose responses are much larger (e.g. a
query for a name with many TXT records) and spoofs the victim's address, so
the ANS amplifies the attacker's bandwidth at the victim.  The meter sits
on the victim's node and accounts the reflected bytes, giving the
amplification ratio the paper bounds at <50% for the DNS-based scheme and
0% for the others (Table I).
"""

from __future__ import annotations

from ipaddress import IPv4Address

from ..dnswire import Message, Name, RRType, make_query
from ..netsim import DnsPayload, Node, Packet, UdpDatagram
from .spoof import BATCH_INTERVAL


class ReflectionAttacker:
    """Spoofs the victim's source address on amplification-friendly queries."""

    def __init__(
        self,
        node: Node,
        target: IPv4Address,
        victim: IPv4Address,
        *,
        rate: float,
        qname: Name | str = "big.foo.com",
        qtype: int = RRType.TXT,
        edns_payload: int | None = None,
    ):
        """``edns_payload`` attaches an OPT RR advertising that UDP size —
        the modern amplification trick that lifts the 512-byte response cap."""
        if rate <= 0:
            raise ValueError("attack rate must be positive")
        self.node = node
        self.target = target
        self.victim = victim
        self.rate = rate
        self.qname = Name.from_text(qname) if isinstance(qname, str) else qname
        self.qtype = qtype
        self.packets_sent = 0
        self.bytes_sent = 0
        self._carry = 0.0
        self._running = False
        self._template = make_query(self.qname, self.qtype, msg_id=0xBEEF)
        if edns_payload is not None:
            from ..dnswire import Name as _Name, OPT, ResourceRecord

            self._template.additionals.append(
                ResourceRecord(_Name.root(), RRType.OPT, edns_payload, 0, OPT())
            )
        self._size = self._template.wire_size()

    def start(self) -> None:
        self._running = True
        self._emit_batch()

    def stop(self) -> None:
        self._running = False

    def _emit_batch(self) -> None:
        if not self._running:
            return
        sim = self.node.sim
        quota = self.rate * BATCH_INTERVAL + self._carry
        count = int(quota)
        self._carry = quota - count
        spacing = BATCH_INTERVAL / count if count else 0.0
        for i in range(count):
            packet = Packet(
                src=self.victim,
                dst=self.target,
                segment=UdpDatagram(
                    sport=42000, dport=53, payload=DnsPayload(self._template, self._size)
                ),
            )
            sim.schedule(i * spacing, self._send_one, packet)
        sim.schedule(BATCH_INTERVAL, self._emit_batch)

    def _send_one(self, packet: Packet) -> None:
        try:
            self.node.send(packet)
        except Exception:  # noqa: BLE001 - unroutable targets vanish
            return
        self.packets_sent += 1
        self.bytes_sent += packet.size


class VictimMeter:
    """Counts reflected DNS traffic arriving at the victim's node."""

    def __init__(self, node: Node):
        self.node = node
        self.packets_received = 0
        self.bytes_received = 0
        self._original_deliver = node.deliver
        node.deliver = self._deliver  # type: ignore[method-assign]

    def _deliver(self, packet: Packet) -> None:
        segment = packet.segment
        if isinstance(segment, UdpDatagram) and segment.sport == 53:
            self.packets_received += 1
            self.bytes_received += packet.size
        self._original_deliver(packet)

    def amplification_ratio(self, attacker: ReflectionAttacker) -> float:
        """Bytes at the victim / bytes the attacker spent, at the IP level."""
        if attacker.bytes_sent == 0:
            return 0.0
        return self.bytes_received / attacker.bytes_sent
