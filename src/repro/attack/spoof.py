"""Spoofing-based DoS attackers (paper §I: the first attack strategy).

The attacker blasts UDP DNS requests at the protected server with forged
source addresses.  Packets are emitted in per-millisecond batches so the
simulator can sustain the paper's 250K requests/sec attack rates.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import Callable

from ..dnswire import Message, Name, make_query
from ..netsim import DnsPayload, Node, Packet, UdpDatagram

#: How often the attacker wakes up to emit a batch of packets.
BATCH_INTERVAL = 0.001


def random_source(rng) -> IPv4Address:
    """A uniformly random, non-reserved-looking spoofed source address."""
    return IPv4Address((rng.getrandbits(32) % 0xDFFFFFFF) | 0x01000000)


class SpoofingAttacker:
    """Open-loop spoofed-source UDP query flood."""

    def __init__(
        self,
        node: Node,
        target: IPv4Address,
        *,
        rate: float,
        qname: Name | str = "www.foo.com",
        source_strategy: Callable[[object], IPv4Address] | None = None,
        fixed_source: IPv4Address | None = None,
        carry_invalid_cookie: bool = False,
    ):
        """``rate`` is requests/sec.  Sources come from ``source_strategy``
        (default: uniformly random) or are pinned to ``fixed_source``.

        ``carry_invalid_cookie`` attaches a garbage modified-DNS cookie to
        every request — the Figure 6 attacker, whose forged requests fail
        the guard's cheapest check and are dropped on the floor.
        """
        if rate <= 0:
            raise ValueError("attack rate must be positive")
        self.node = node
        self.target = target
        self.rate = rate
        self.qname = Name.from_text(qname) if isinstance(qname, str) else qname
        if fixed_source is not None:
            self.source_strategy = lambda rng: fixed_source
        else:
            self.source_strategy = source_strategy or random_source
        self.packets_sent = 0
        self._carry = 0.0
        self._running = False
        self._template = make_query(self.qname, msg_id=0xDEAD)
        if carry_invalid_cookie:
            from ..dnswire import attach_cookie

            attach_cookie(self._template, b"\x42" * 16)
        self._template_size = self._template.wire_size()
        self._sport = 40000

    def start(self) -> None:
        self._running = True
        self._emit_batch()

    def stop(self) -> None:
        self._running = False

    def _emit_batch(self) -> None:
        if not self._running:
            return
        sim = self.node.sim
        quota = self.rate * BATCH_INTERVAL + self._carry
        count = int(quota)
        self._carry = quota - count
        # spread the batch evenly across the interval so the flood is a
        # steady stream, not a synchronized millisecond burst
        spacing = BATCH_INTERVAL / count if count else 0.0
        for i in range(count):
            packet = Packet(
                src=self.source_strategy(sim.rng),
                dst=self.target,
                segment=UdpDatagram(
                    sport=self._sport,
                    dport=53,
                    payload=DnsPayload(self._template, self._template_size),
                ),
            )
            self._sport = 40000 + (self._sport - 39999) % 20000
            sim.schedule(i * spacing, self._send_one, packet)
        sim.schedule(BATCH_INTERVAL, self._emit_batch)

    def _send_one(self, packet: Packet) -> None:
        try:
            self.node.send(packet)
            self.packets_sent += 1
        except Exception:  # noqa: BLE001 - unroutable spoof targets  # repro: allow[W001]
            pass


class CookieLabelSprayer(SpoofingAttacker):
    """Spoofed queries whose QNAMEs are guessed cookie labels (§III.G).

    Each packet carries a random ``PR`` + 8-hex-digit label, attempting to
    brute-force the 2^32 NS-name cookie range.
    """

    def __init__(self, node: Node, target: IPv4Address, *, rate: float,
                 victim: IPv4Address, origin: Name | str = "."):
        super().__init__(node, target, rate=rate, fixed_source=victim)
        self.origin = Name.from_text(origin) if isinstance(origin, str) else origin
        self.node = node

    def _emit_batch(self) -> None:
        if not self._running:
            return
        sim = self.node.sim
        quota = self.rate * BATCH_INTERVAL + self._carry
        count = int(quota)
        self._carry = quota - count
        spacing = BATCH_INTERVAL / count if count else 0.0
        for i in range(count):
            guess = b"PR%08x" % sim.rng.getrandbits(32)
            qname = Name((guess + b"www.foo.com", *self.origin.labels))
            query = make_query(qname, msg_id=sim.rng.getrandbits(16))
            packet = Packet(
                src=self.source_strategy(sim.rng),
                dst=self.target,
                segment=UdpDatagram(sport=41000, dport=53, payload=DnsPayload(query)),
            )
            sim.schedule(i * spacing, self._send_one, packet)
        sim.schedule(BATCH_INTERVAL, self._emit_batch)
