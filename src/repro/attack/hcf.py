"""Hop-Count Filtering (HCF) — the §II related-work baseline [Jin et al.].

Included as an ablation target: HCF infers each source's distance from the
TTL remaining in its packets, learns a source→hop-count table during calm
periods, and filters packets whose hop count disagrees during attacks.  The
paper's critique (false negatives, learning time) is measurable here: a
spoofed packet passes whenever the attacker's real distance matches the
spoofed host's learned distance.
"""

from __future__ import annotations

from ipaddress import IPv4Address

#: Common initial TTLs used by real stacks; inference picks the smallest
#: candidate >= the observed TTL.
INITIAL_TTLS = (30, 32, 60, 64, 128, 255)


def infer_hop_count(observed_ttl: int) -> int:
    """Hops travelled, assuming the sender used a standard initial TTL."""
    for initial in INITIAL_TTLS:
        if observed_ttl <= initial:
            return initial - observed_ttl
    return 255 - observed_ttl


class HopCountFilter:
    """The HCF table: learn in peacetime, filter under attack."""

    def __init__(self, *, tolerance: int = 0):
        """``tolerance`` allows +/- that many hops of drift before dropping."""
        self.tolerance = tolerance
        self.table: dict[IPv4Address, int] = {}
        self.filtering = False
        self.learned = 0
        self.passed = 0
        self.dropped = 0
        self.unknown_passed = 0

    def learn(self, source: IPv4Address, observed_ttl: int) -> None:
        """Record the hop count for ``source`` (trusted, calm traffic)."""
        hops = infer_hop_count(observed_ttl)
        if source not in self.table:
            self.learned += 1
        self.table[source] = hops

    def check(self, source: IPv4Address, observed_ttl: int) -> bool:
        """True if the packet should be accepted."""
        if not self.filtering:
            self.learn(source, observed_ttl)
            self.passed += 1
            return True
        expected = self.table.get(source)
        if expected is None:
            # never-seen source: HCF must pass it (or drop all new clients)
            self.unknown_passed += 1
            self.passed += 1
            return True
        if abs(infer_hop_count(observed_ttl) - expected) <= self.tolerance:
            self.passed += 1
            return True
        self.dropped += 1
        return False

    def false_negative_rate(self, attacker_hops: int) -> float:
        """Fraction of learned sources an attacker at ``attacker_hops`` can
        impersonate without being filtered — the structural weakness the
        paper cites when dismissing HCF for DNS."""
        if not self.table:
            return 0.0
        matches = sum(
            1 for hops in self.table.values() if abs(hops - attacker_hops) <= self.tolerance
        )
        return matches / len(self.table)
