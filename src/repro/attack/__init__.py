"""Attack framework: spoofed floods, reflection, guessing, zombies, baselines."""

from .amplification import ReflectionAttacker, VictimMeter
from .hcf import HopCountFilter, infer_hop_count
from .spoof import BATCH_INTERVAL, CookieLabelSprayer, SpoofingAttacker, random_source
from .zombie import ZombieFlood

__all__ = [
    "BATCH_INTERVAL",
    "CookieLabelSprayer",
    "HopCountFilter",
    "ReflectionAttacker",
    "SpoofingAttacker",
    "VictimMeter",
    "ZombieFlood",
    "infer_hop_count",
    "random_source",
]
