"""Non-spoofed (zombie) flood: the attack Rate-Limiter2 exists for (§III.G).

A compromised host uses its *real* address, plays the protocol honestly to
obtain a valid cookie, then floods.  Spoof detection cannot touch it — every
cookie verifies — so the guard's only defence is the per-host nominal rate
of Rate-Limiter2.
"""

from __future__ import annotations

from ipaddress import IPv4Address

from ..dnswire import Message, Name, ZERO_COOKIE, attach_cookie, extract_cookie, make_query
from ..netsim import Node
from .spoof import BATCH_INTERVAL


class ZombieFlood:
    """Obtains a modified-DNS cookie legitimately, then floods with it."""

    def __init__(
        self,
        node: Node,
        target: IPv4Address,
        *,
        rate: float,
        qname: Name | str = "www.foo.com",
    ):
        if rate <= 0:
            raise ValueError("attack rate must be positive")
        self.node = node
        self.target = target
        self.rate = rate
        self.qname = Name.from_text(qname) if isinstance(qname, str) else qname
        self.cookie: bytes | None = None
        self.packets_sent = 0
        self.responses_received = 0
        self._carry = 0.0
        self._running = False
        self._socket = node.udp.bind_ephemeral(self._on_response)

    # -- phase 1: be a good citizen ------------------------------------------------

    def start(self) -> None:
        self._running = True
        probe = attach_cookie(make_query(self.qname, msg_id=1), ZERO_COOKIE)
        self._socket.send(probe, self.target, 53)

    def stop(self) -> None:
        self._running = False

    def _on_response(
        self, payload: Message | bytes, src: IPv4Address, sport: int, dst: IPv4Address
    ) -> None:
        if not isinstance(payload, Message):
            return
        cookie = extract_cookie(payload)
        if cookie is not None and cookie != ZERO_COOKIE and self.cookie is None:
            self.cookie = cookie
            self._emit_batch()
            return
        self.responses_received += 1

    # -- phase 2: flood with the valid cookie -----------------------------------------

    def _emit_batch(self) -> None:
        if not self._running or self.cookie is None:
            return
        sim = self.node.sim
        quota = self.rate * BATCH_INTERVAL + self._carry
        count = int(quota)
        self._carry = quota - count
        spacing = BATCH_INTERVAL / count if count else 0.0
        for i in range(count):
            query = attach_cookie(
                make_query(self.qname, msg_id=(self.packets_sent + i) & 0xFFFF), self.cookie
            )
            sim.schedule(i * spacing, self._socket.send, query, self.target, 53)
        self.packets_sent += count
        sim.schedule(BATCH_INTERVAL, self._emit_batch)
